package analysis

import (
	"flag"
	"go/token"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

var update = flag.Bool("update", false, "rewrite the golden expect.txt files")

// loadFixture parses one testdata fixture directory as a package.
func loadFixture(t *testing.T, dir string) *Package {
	t.Helper()
	pkg, err := LoadDir(token.NewFileSet(), dir, filepath.ToSlash(dir))
	if err != nil {
		t.Fatalf("load %s: %v", dir, err)
	}
	if pkg == nil {
		t.Fatalf("load %s: no Go files", dir)
	}
	return pkg
}

// render formats findings with basename-relative paths, one per line, in
// the same file:line: rule: message form cmd/philint prints.
func render(findings []Finding) string {
	var sb strings.Builder
	for _, f := range findings {
		f.Pos.Filename = filepath.Base(f.Pos.Filename)
		sb.WriteString(f.String())
		sb.WriteString("\n")
	}
	return sb.String()
}

// TestGolden runs every analyzer over its fixture directory and compares
// the findings with the checked-in expect.txt: each rule must fire on its
// flagged fixtures and stay silent on clean.go.
func TestGolden(t *testing.T) {
	for _, a := range Analyzers() {
		t.Run(a.Name, func(t *testing.T) {
			dir := filepath.Join("testdata", a.Name)
			pkg := loadFixture(t, dir)
			findings := RunPackage(a, pkg)

			flaggedSeen := false
			for _, f := range findings {
				base := filepath.Base(f.Pos.Filename)
				if base == "clean.go" {
					t.Errorf("%s fired on clean fixture: %s", a.Name, f)
				}
				if f.Rule != a.Name {
					t.Errorf("%s reported foreign rule %q", a.Name, f.Rule)
				}
				flaggedSeen = true
			}
			if !flaggedSeen {
				t.Errorf("%s reported nothing; want findings on the flagged fixture", a.Name)
			}

			got := render(findings)
			goldenPath := filepath.Join(dir, "expect.txt")
			if *update {
				if err := os.WriteFile(goldenPath, []byte(got), 0o644); err != nil {
					t.Fatal(err)
				}
				return
			}
			want, err := os.ReadFile(goldenPath)
			if err != nil {
				t.Fatalf("read golden (run with -update to create): %v", err)
			}
			if got != string(want) {
				t.Errorf("findings mismatch\n--- got ---\n%s--- want ---\n%s", got, want)
			}
		})
	}
}

// TestSuppression runs the full suite through Lint over the suppression
// fixture, with the package placed in a sim-path directory so every rule
// is in scope. It pins that a directive silences exactly its rule on
// exactly its line, and that malformed directives are findings.
func TestSuppression(t *testing.T) {
	pkg := loadFixture(t, filepath.Join("testdata", "suppress"))
	pkg.Rel = "internal/sim" // engage the sim-path-scoped rules
	got := render(Lint([]*Package{pkg}, Analyzers()))

	goldenPath := filepath.Join("testdata", "suppress", "expect.txt")
	if *update {
		if err := os.WriteFile(goldenPath, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(goldenPath)
	if err != nil {
		t.Fatalf("read golden (run with -update to create): %v", err)
	}
	if got != string(want) {
		t.Errorf("suppression results mismatch\n--- got ---\n%s--- want ---\n%s", got, want)
	}

	// The structural assertions behind the golden file, spelled out so a
	// regenerated golden cannot quietly weaken them.
	for _, line := range strings.Split(strings.TrimSpace(got), "\n") {
		if strings.Contains(line, "suppress.go:12:") {
			t.Errorf("trailing directive failed to suppress its line: %s", line)
		}
		if strings.Contains(line, "mapiter") {
			t.Errorf("standalone mapiter directive failed to suppress: %s", line)
		}
	}
	for _, wantFrag := range []string{
		"suppress.go:13: wallclock:", // the undirected clock read survives
		"suppress.go:21: wallclock:", // wrong-rule directive suppresses nothing
		"names no rule",
		"unknown rule \"nosuchrule\"",
		"gives no reason",
	} {
		if !strings.Contains(got, wantFrag) {
			t.Errorf("missing expected finding %q in:\n%s", wantFrag, got)
		}
	}
}

// TestScoping pins each rule's package scope: where the determinism
// contract binds, and where it deliberately does not.
func TestScoping(t *testing.T) {
	cases := []struct {
		analyzer *Analyzer
		rel      string
		want     bool
	}{
		{DetRand, "internal/rng", false}, // the sanctioned wrapper
		{DetRand, "internal/workload", true},
		{DetRand, "cmd/phigen", true},
		{WallClock, "internal/sim", true},
		{WallClock, "cmd/phibench", true}, // module-wide: annotate, don't exempt
		{WallClock, ".", true},
		{MapIter, "internal/cosmic", true},
		{MapIter, "internal/faults", true},
		{MapIter, "internal/obs", false}, // offline reporting is out of sim scope
		{FloatEq, "internal/knapsack", true},
		{FloatEq, "internal/core", true},
		{FloatEq, "internal/estimator", true},
		{FloatEq, "internal/obs", false},
		{SortStable, "internal/knapsack", true},
		{SortStable, "internal/condor", true},
		{SortStable, "internal/metrics", false},
		{SimGoroutine, "internal/phi", true},
		{SimGoroutine, "internal/condor", true},
		{SimGoroutine, "internal/sim", false}, // the worker fork/join lives here
		{SimGoroutine, "internal/obs", false},
		{SimGoroutine, "cmd/phibench", false},
	}
	for _, tc := range cases {
		if got := tc.analyzer.AppliesTo(tc.rel); got != tc.want {
			t.Errorf("%s.AppliesTo(%q) = %v, want %v", tc.analyzer.Name, tc.rel, got, tc.want)
		}
	}
}

// TestModuleIsClean is the in-process version of the make lint gate: the
// tree itself must carry zero unsuppressed findings, so a regression
// shows up in go test as well as in CI.
func TestModuleIsClean(t *testing.T) {
	root, err := FindModuleRoot(".")
	if err != nil {
		t.Fatal(err)
	}
	pkgs, err := LoadModule(root, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(pkgs) < 10 {
		t.Fatalf("LoadModule found only %d packages; walk is broken", len(pkgs))
	}
	findings := LintAll(pkgs, Analyzers(), WholeAnalyzers())
	for _, f := range findings {
		t.Errorf("unsuppressed finding: %s", f)
	}
}

// TestLoadModuleRejectsUnmatchedPattern: a typo'd package pattern must be
// an error, not a vacuously clean lint run.
func TestLoadModuleRejectsUnmatchedPattern(t *testing.T) {
	root, err := FindModuleRoot(".")
	if err != nil {
		t.Fatal(err)
	}
	for _, pats := range [][]string{
		{"./nosuchdir"},
		{"./nosuchdir/..."},
		{"./internal/...", "./typo"},
	} {
		if _, err := LoadModule(root, pats); err == nil {
			t.Errorf("LoadModule(%q) succeeded, want unmatched-pattern error", pats)
		}
	}
	if _, err := LoadModule(root, []string{"./internal/sim", "./cmd/..."}); err != nil {
		t.Errorf("LoadModule with valid patterns failed: %v", err)
	}
}
