package analysis

import (
	"go/ast"
	"go/token"
)

// Index is a package-wide heuristic type table built from declarations
// alone: named types, struct fields, and package-level variables. It is
// what lets the analyzers resolve expressions like `m.admitted` to "a
// map" without a full type checker — precise enough for the determinism
// rules, and dependency-free.
type Index struct {
	// types maps a package-level type name to its underlying type
	// expression (`type X map[K]V` → the MapType).
	types map[string]ast.Expr
	// fields maps struct type name → field name → field type expression.
	fields map[string]map[string]ast.Expr
	// pkgVars maps package-level var names to their declared or inferred
	// type expressions.
	pkgVars map[string]ast.Expr
}

// BuildIndex scans the package's files for type and var declarations.
func BuildIndex(files []*ast.File) *Index {
	idx := &Index{
		types:   map[string]ast.Expr{},
		fields:  map[string]map[string]ast.Expr{},
		pkgVars: map[string]ast.Expr{},
	}
	for _, f := range files {
		for _, decl := range f.Decls {
			gd, ok := decl.(*ast.GenDecl)
			if !ok {
				continue
			}
			for _, spec := range gd.Specs {
				switch s := spec.(type) {
				case *ast.TypeSpec:
					idx.types[s.Name.Name] = s.Type
					if st, ok := s.Type.(*ast.StructType); ok {
						fm := map[string]ast.Expr{}
						for _, fld := range st.Fields.List {
							for _, name := range fld.Names {
								fm[name.Name] = fld.Type
							}
						}
						idx.fields[s.Name.Name] = fm
					}
				case *ast.ValueSpec:
					if gd.Tok != token.VAR {
						continue
					}
					for i, name := range s.Names {
						if s.Type != nil {
							idx.pkgVars[name.Name] = s.Type
						} else if i < len(s.Values) {
							if t := literalType(s.Values[i]); t != nil {
								idx.pkgVars[name.Name] = t
							}
						}
					}
				}
			}
		}
	}
	return idx
}

// Env is the variable environment of one function: receiver, parameters,
// and every local whose type is statically evident (explicit var decls,
// make/composite-literal/conversion initializers). Shadowing is ignored —
// acceptable for a heuristic linter, and flagged code can always be
// annotated.
type Env struct {
	idx  *Index
	vars map[string]ast.Expr
}

// FuncEnv builds the environment for a function or method declaration,
// including locals declared anywhere in its body (function literals
// included, since the scanners analyze those inline).
func (idx *Index) FuncEnv(fd *ast.FuncDecl) *Env {
	env := &Env{idx: idx, vars: map[string]ast.Expr{}}
	if fd.Recv != nil {
		bindFieldList(env, fd.Recv)
	}
	if fd.Type.Params != nil {
		bindFieldList(env, fd.Type.Params)
	}
	if fd.Type.Results != nil {
		bindFieldList(env, fd.Type.Results)
	}
	if fd.Body != nil {
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			switch s := n.(type) {
			case *ast.DeclStmt:
				if gd, ok := s.Decl.(*ast.GenDecl); ok && gd.Tok == token.VAR {
					for _, spec := range gd.Specs {
						if vs, ok := spec.(*ast.ValueSpec); ok {
							for i, name := range vs.Names {
								if vs.Type != nil {
									env.vars[name.Name] = vs.Type
								} else if i < len(vs.Values) {
									env.bindInferred(name.Name, vs.Values[i])
								}
							}
						}
					}
				}
			case *ast.AssignStmt:
				if s.Tok != token.DEFINE {
					return true
				}
				if len(s.Lhs) == len(s.Rhs) {
					for i, lhs := range s.Lhs {
						if id, ok := lhs.(*ast.Ident); ok && id.Name != "_" {
							env.bindInferred(id.Name, s.Rhs[i])
						}
					}
				}
			case *ast.RangeStmt:
				// Bind the key/value variables of ranges whose operand
				// resolves: `for p := range d.procs` gives p the key type,
				// `for _, v := range xs` gives v the element type.
				switch t := env.resolve(env.TypeOf(s.X)).(type) {
				case *ast.MapType:
					if id, ok := s.Key.(*ast.Ident); ok && id.Name != "_" {
						env.vars[id.Name] = t.Key
					}
					if id, ok := s.Value.(*ast.Ident); ok && id.Name != "_" {
						env.vars[id.Name] = t.Value
					}
				case *ast.ArrayType:
					if id, ok := s.Value.(*ast.Ident); ok && id.Name != "_" {
						env.vars[id.Name] = t.Elt
					}
				}
			case *ast.FuncLit:
				bindFieldList(env, s.Type.Params)
			}
			return true
		})
	}
	return env
}

func bindFieldList(env *Env, fl *ast.FieldList) {
	for _, f := range fl.List {
		for _, name := range f.Names {
			env.vars[name.Name] = f.Type
		}
	}
}

// bindInferred records name's type when the initializer makes it evident.
func (env *Env) bindInferred(name string, value ast.Expr) {
	if t := literalType(value); t != nil {
		env.vars[name] = t
		return
	}
	if t := env.TypeOf(value); t != nil {
		env.vars[name] = t
	}
}

// literalType recognizes initializers whose type is syntactically present:
// make(T, ...), T{...}, &T{...}, and basic literals.
func literalType(e ast.Expr) ast.Expr {
	switch v := e.(type) {
	case *ast.CallExpr:
		if id, ok := v.Fun.(*ast.Ident); ok && id.Name == "make" && len(v.Args) > 0 {
			return v.Args[0]
		}
	case *ast.CompositeLit:
		return v.Type
	case *ast.UnaryExpr:
		if v.Op == token.AND {
			if cl, ok := v.X.(*ast.CompositeLit); ok && cl.Type != nil {
				return &ast.StarExpr{X: cl.Type}
			}
		}
	case *ast.BasicLit:
		switch v.Kind {
		case token.FLOAT:
			return ast.NewIdent("float64")
		case token.INT:
			return ast.NewIdent("int")
		case token.STRING:
			return ast.NewIdent("string")
		}
	}
	return nil
}

// TypeOf resolves an expression to a type expression, or nil when the
// heuristics cannot tell. The result may be a named type; use IsMap /
// IsFloat for classification.
func (env *Env) TypeOf(e ast.Expr) ast.Expr {
	switch v := e.(type) {
	case *ast.Ident:
		if t, ok := env.vars[v.Name]; ok {
			return t
		}
		if t, ok := env.idx.pkgVars[v.Name]; ok {
			return t
		}
	case *ast.ParenExpr:
		return env.TypeOf(v.X)
	case *ast.SelectorExpr:
		// x.f where x's type is a (pointer to a) package-local struct.
		base := env.resolve(env.TypeOf(v.X))
		if st, ok := base.(*ast.StarExpr); ok {
			base = env.resolve(st.X)
		}
		if st, ok := base.(*ast.StructType); ok {
			for _, fld := range st.Fields.List {
				for _, name := range fld.Names {
					if name.Name == v.Sel.Name {
						return fld.Type
					}
				}
			}
		}
		if id, ok := base.(*ast.Ident); ok {
			if fm, ok := env.idx.fields[id.Name]; ok {
				return fm[v.Sel.Name]
			}
		}
	case *ast.IndexExpr:
		switch t := env.resolve(env.TypeOf(v.X)).(type) {
		case *ast.MapType:
			return t.Value
		case *ast.ArrayType:
			return t.Elt
		}
	case *ast.CallExpr:
		// Conversions: float64(x), units.MB(x), MyType(x).
		if id, ok := v.Fun.(*ast.Ident); ok && len(v.Args) == 1 {
			if isBuiltinNumeric(id.Name) {
				return id
			}
			if _, ok := env.idx.types[id.Name]; ok {
				return id
			}
		}
	case *ast.CompositeLit:
		return v.Type
	case *ast.BasicLit:
		return literalType(v)
	case *ast.BinaryExpr:
		if isArith(v.Op) {
			if t := env.TypeOf(v.X); t != nil {
				return t
			}
			return env.TypeOf(v.Y)
		}
	case *ast.StarExpr:
		if t, ok := env.resolve(env.TypeOf(v.X)).(*ast.StarExpr); ok {
			return t.X
		}
	case *ast.UnaryExpr:
		if v.Op == token.AND {
			if t := env.TypeOf(v.X); t != nil {
				return &ast.StarExpr{X: t}
			}
		}
	}
	return nil
}

// resolve chases package-local named types to their underlying type
// expressions, with a depth guard against cycles.
func (env *Env) resolve(t ast.Expr) ast.Expr {
	for depth := 0; depth < 8; depth++ {
		switch v := t.(type) {
		case *ast.ParenExpr:
			t = v.X
		case *ast.Ident:
			under, ok := env.idx.types[v.Name]
			if !ok || under == t {
				return t
			}
			t = under
		default:
			return t
		}
	}
	return t
}

// IsMap reports whether e resolves to a map type.
func (env *Env) IsMap(e ast.Expr) bool {
	if cl, ok := e.(*ast.CompositeLit); ok && cl.Type != nil {
		_, isMap := env.resolve(cl.Type).(*ast.MapType)
		return isMap
	}
	_, ok := env.resolve(env.TypeOf(e)).(*ast.MapType)
	return ok
}

// IsFloat reports whether e is evidently a floating-point expression:
// float literals, float conversions, variables and fields of (named)
// float types, arithmetic over any of those.
func (env *Env) IsFloat(e ast.Expr) bool {
	switch v := e.(type) {
	case *ast.ParenExpr:
		return env.IsFloat(v.X)
	case *ast.BasicLit:
		return v.Kind == token.FLOAT
	case *ast.UnaryExpr:
		return env.IsFloat(v.X)
	case *ast.BinaryExpr:
		if isArith(v.Op) {
			return env.IsFloat(v.X) || env.IsFloat(v.Y)
		}
		return false
	case *ast.CallExpr:
		if id, ok := v.Fun.(*ast.Ident); ok && (id.Name == "float64" || id.Name == "float32") {
			return true
		}
	}
	if id, ok := env.resolve(env.TypeOf(e)).(*ast.Ident); ok {
		return id.Name == "float64" || id.Name == "float32"
	}
	return false
}

func isBuiltinNumeric(name string) bool {
	switch name {
	case "int", "int8", "int16", "int32", "int64",
		"uint", "uint8", "uint16", "uint32", "uint64", "uintptr",
		"float32", "float64", "byte", "rune", "complex64", "complex128":
		return true
	}
	return false
}

func isArith(op token.Token) bool {
	switch op {
	case token.ADD, token.SUB, token.MUL, token.QUO, token.REM:
		return true
	}
	return false
}
