package analysis

import (
	"path/filepath"
	"testing"
)

// TestCallGraphReachability drives the call-graph builder over the fixture
// module and asserts reachability sets directly: interface dispatch fans out
// to every implementation, function-typed calls resolve to exactly the
// address-taken candidates, method values resolve, and recursion closes
// without divergence.
func TestCallGraphReachability(t *testing.T) {
	mod, _ := loadFixtureModule(t, filepath.Join("testdata", "callgraph"))
	g := BuildGraph(mod)

	const zoo = "internal/cgzoo"
	const app = "internal/cgapp"

	dogSpeak := fixtureFunc(t, mod, zoo, "Dog.Speak")
	catSpeak := fixtureFunc(t, mod, zoo, "Cat.Speak")
	transform := fixtureFunc(t, mod, zoo, "Transform")
	triple := fixtureFunc(t, mod, zoo, "Triple")
	unreferenced := fixtureFunc(t, mod, zoo, "Unreferenced")
	rec := fixtureFunc(t, mod, zoo, "Rec")
	mutualA := fixtureFunc(t, mod, zoo, "MutualA")
	mutualB := fixtureFunc(t, mod, zoo, "MutualB")

	cases := []struct {
		name       string
		entry      *FuncInfo
		reachable  []*FuncInfo
		excluded   []*FuncInfo
		chainEndAt *FuncInfo
		chainLen   int
	}{
		{
			name:       "interface dispatch fans out to all implementations",
			entry:      fixtureFunc(t, mod, app, "CallIface"),
			reachable:  []*FuncInfo{dogSpeak, catSpeak},
			excluded:   []*FuncInfo{transform, rec},
			chainEndAt: catSpeak,
			chainLen:   2,
		},
		{
			name:      "function-typed field resolves to address-taken candidates only",
			entry:     fixtureFunc(t, mod, app, "CallField"),
			reachable: []*FuncInfo{transform, triple},
			excluded:  []*FuncInfo{unreferenced, dogSpeak},
		},
		{
			name:      "method value resolves to the taken method alone",
			entry:     fixtureFunc(t, mod, app, "CallMethodValue"),
			reachable: []*FuncInfo{dogSpeak},
			excluded:  []*FuncInfo{catSpeak},
		},
		{
			name:       "recursion closes over direct and mutual cycles",
			entry:      fixtureFunc(t, mod, app, "CallRec"),
			reachable:  []*FuncInfo{rec, mutualA, mutualB},
			excluded:   []*FuncInfo{dogSpeak, transform},
			chainEndAt: mutualB,
			chainLen:   3,
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			r := g.ReachableFrom([]*FuncInfo{tc.entry})
			if !r.Reaches(tc.entry) {
				t.Fatalf("entry %s not reachable from itself", tc.entry.Fn.Name())
			}
			for _, want := range tc.reachable {
				if !r.Reaches(want) {
					t.Errorf("%s should reach %s", tc.entry.Fn.Name(), want.Fn.FullName())
				}
			}
			for _, not := range tc.excluded {
				if r.Reaches(not) {
					t.Errorf("%s must not reach %s", tc.entry.Fn.Name(), not.Fn.FullName())
				}
			}
			if tc.chainEndAt != nil {
				chain := r.Chain(tc.chainEndAt)
				if len(chain) != tc.chainLen {
					t.Errorf("chain to %s has %d links, want %d", tc.chainEndAt.Fn.Name(), len(chain), tc.chainLen)
				}
				if len(chain) > 0 {
					if chain[0].Fn != tc.entry {
						t.Errorf("chain starts at %s, want entry %s", chain[0].Fn.Fn.Name(), tc.entry.Fn.Name())
					}
					if chain[len(chain)-1].Fn != tc.chainEndAt {
						t.Errorf("chain ends at %s, want %s", chain[len(chain)-1].Fn.Fn.Name(), tc.chainEndAt.Fn.Name())
					}
					for i, link := range chain[:len(chain)-1] {
						if !link.Pos.IsValid() {
							t.Errorf("chain link %d has no call position", i)
						}
					}
				}
			}
		})
	}

	// The whole-module reachability from every app entry must still exclude
	// the never-referenced candidate.
	var appFuncs []*FuncInfo
	for _, fi := range mod.Funcs {
		if fi.Pkg.Rel == app {
			appFuncs = append(appFuncs, fi)
		}
	}
	r := g.ReachableFrom(appFuncs)
	if r.Reaches(unreferenced) {
		t.Error("Unreferenced must stay unreachable from the whole app package")
	}
	if got := len(r.Funcs()); got < 10 {
		t.Errorf("whole-app reachability found %d funcs, want >= 10", got)
	}
}

// TestCallGraphValueFlows pins how function VALUES resolve: a taken
// function is charged to its taker, calls through parameters and
// literal-bound locals add neither edges nor unresolved sites (they are
// covered at the value's origin), and a value no module function matches
// is recorded as unresolved rather than silently dropped.
func TestCallGraphValueFlows(t *testing.T) {
	mod, _ := loadFixtureModule(t, filepath.Join("testdata", "callgraph"))
	g := BuildGraph(mod)

	const zoo = "internal/cgzoo"
	const app = "internal/cgapp"
	transform := fixtureFunc(t, mod, zoo, "Transform")
	triple := fixtureFunc(t, mod, zoo, "Triple")
	runCallback := fixtureFunc(t, mod, app, "RunCallback")

	// The taker edge: UseCallback reaches Transform because it took its
	// value — and does NOT reach Triple, even though Triple's signature
	// matches the parameter RunCallback calls through.
	r := g.ReachableFrom([]*FuncInfo{fixtureFunc(t, mod, app, "UseCallback")})
	if !r.Reaches(transform) || !r.Reaches(runCallback) {
		t.Error("UseCallback must reach both RunCallback and the Transform value it passed")
	}
	if r.Reaches(triple) {
		t.Error("UseCallback must not reach Triple: signature matching must not apply to param calls")
	}

	// Param and literal-bound calls: silent at the call site, by design.
	for _, name := range []string{"RunCallback", "LitLocal"} {
		fi := fixtureFunc(t, mod, app, name)
		if n := len(g.Edges[fi]); n != 0 {
			t.Errorf("%s has %d edges, want 0 (covered at value origin)", name, n)
		}
		if n := len(g.Unresolved[fi]); n != 0 {
			t.Errorf("%s has %d unresolved sites, want 0", name, n)
		}
	}

	// An unmatchable function value is an unresolved site, the signal the
	// conservative rules treat as unanalyzable.
	stranger := fixtureFunc(t, mod, app, "CallStranger")
	if n := len(g.Unresolved[stranger]); n != 1 {
		t.Errorf("CallStranger has %d unresolved sites, want 1", n)
	}
	if n := len(g.Edges[stranger]); n != 0 {
		t.Errorf("CallStranger has %d edges, want 0", n)
	}

	// An interface call no module type implements is likewise unresolved —
	// the value behind it came from outside the module, and modeling the
	// call as effect-free would be an unsound hole.
	alien := fixtureFunc(t, mod, app, "CallAlien")
	if n := len(g.Unresolved[alien]); n != 1 {
		t.Errorf("CallAlien has %d unresolved sites, want 1", n)
	}
	if n := len(g.Edges[alien]); n != 0 {
		t.Errorf("CallAlien has %d edges, want 0", n)
	}
}
