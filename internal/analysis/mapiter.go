package analysis

import (
	"go/ast"
	"go/token"
	"strings"
)

// MapIter flags `for … range` over map-typed expressions in sim-path
// packages. Go randomizes map iteration order per run, so any observable
// effect of the loop's order — kill order, dispatch order, even the order
// of recorded violations — breaks replayability.
//
// Two loop shapes are recognized as safe and not flagged:
//
//   - order-insensitive bodies: pure commutative accumulation (x += v,
//     counters, delete from the ranged map, writes keyed by the loop key),
//     optionally wrapped in if/continue;
//   - collect-and-sort: the body only appends the keys (or values) to a
//     slice and a later statement in the same block sorts that slice
//     before it is consumed.
//
// Anything else — appends consumed unsorted, calls with side effects,
// early returns that pick an arbitrary element — is flagged.
var MapIter = &Analyzer{
	Name: "mapiter",
	Doc: "flag range over maps in sim-path packages unless the body is " +
		"order-insensitive or the keys are collected and sorted first",
	AppliesTo: SimPath,
	Run:       runMapIter,
}

func runMapIter(pass *Pass) {
	for _, file := range pass.Pkg.Files {
		walkFuncs(pass, file, func(env *Env, body *ast.BlockStmt) {
			scanStmts(body.List, env, pass)
		})
	}
}

// scanStmts walks a statement list, recursing into every nested block
// (including function literals), and checks each map range against the
// safe shapes. The slice is passed whole so a range at index i can look
// at the statements after it for the collect-and-sort pattern.
func scanStmts(stmts []ast.Stmt, env *Env, pass *Pass) {
	for i, stmt := range stmts {
		if rs, ok := stmt.(*ast.RangeStmt); ok && env.IsMap(rs.X) {
			checkMapRange(rs, stmts[i+1:], env, pass)
		}
		scanNested(stmt, env, pass)
	}
}

// scanNested recurses into the blocks hanging off one statement.
func scanNested(stmt ast.Stmt, env *Env, pass *Pass) {
	switch s := stmt.(type) {
	case *ast.BlockStmt:
		scanStmts(s.List, env, pass)
	case *ast.IfStmt:
		scanStmts(s.Body.List, env, pass)
		if s.Else != nil {
			scanNested(s.Else, env, pass)
		}
	case *ast.ForStmt:
		scanStmts(s.Body.List, env, pass)
	case *ast.RangeStmt:
		scanStmts(s.Body.List, env, pass)
	case *ast.SwitchStmt:
		for _, c := range s.Body.List {
			if cc, ok := c.(*ast.CaseClause); ok {
				scanStmts(cc.Body, env, pass)
			}
		}
	case *ast.TypeSwitchStmt:
		for _, c := range s.Body.List {
			if cc, ok := c.(*ast.CaseClause); ok {
				scanStmts(cc.Body, env, pass)
			}
		}
	case *ast.SelectStmt:
		for _, c := range s.Body.List {
			if cc, ok := c.(*ast.CommClause); ok {
				scanStmts(cc.Body, env, pass)
			}
		}
	case *ast.LabeledStmt:
		scanNested(s.Stmt, env, pass)
	case *ast.ExprStmt, *ast.AssignStmt, *ast.DeclStmt, *ast.GoStmt, *ast.DeferStmt, *ast.ReturnStmt:
		// Function literals can hide anywhere an expression can.
		ast.Inspect(stmt, func(n ast.Node) bool {
			if fl, ok := n.(*ast.FuncLit); ok {
				scanStmts(fl.Body.List, env, pass)
				return false
			}
			return true
		})
	}
}

func checkMapRange(rs *ast.RangeStmt, following []ast.Stmt, env *Env, pass *Pass) {
	if orderInsensitive(rs.Body.List, rs) {
		return
	}
	if collectedAndSorted(rs, following) {
		return
	}
	pass.Reportf("mapiter", rs.Pos(),
		"range over map %s has nondeterministic iteration order; collect and sort the keys, "+
			"use an insertion-ordered structure, or make the body order-insensitive",
		exprString(rs.X))
}

// orderInsensitive reports whether every statement's effect is independent
// of iteration order.
func orderInsensitive(stmts []ast.Stmt, rs *ast.RangeStmt) bool {
	for _, stmt := range stmts {
		switch s := stmt.(type) {
		case *ast.IncDecStmt:
			// counters: x++ / x--
		case *ast.AssignStmt:
			if !commutativeAssign(s, rs) {
				return false
			}
		case *ast.ExprStmt:
			// delete from the ranged map keeps the loop a pure purge.
			if !isDeleteFromRanged(s.X, rs) {
				return false
			}
		case *ast.BranchStmt:
			if s.Tok != token.CONTINUE {
				return false
			}
		case *ast.IfStmt:
			if s.Init != nil && !commutativeAssignStmt(s.Init, rs) {
				return false
			}
			if !orderInsensitive(s.Body.List, rs) {
				return false
			}
			if s.Else != nil {
				if eb, ok := s.Else.(*ast.BlockStmt); !ok || !orderInsensitive(eb.List, rs) {
					return false
				}
			}
		case *ast.BlockStmt:
			if !orderInsensitive(s.List, rs) {
				return false
			}
		default:
			return false
		}
	}
	return true
}

func commutativeAssignStmt(stmt ast.Stmt, rs *ast.RangeStmt) bool {
	as, ok := stmt.(*ast.AssignStmt)
	return ok && commutativeAssign(as, rs)
}

// commutativeAssign accepts accumulator updates whose final value does not
// depend on visit order: compound += / -= / |= / &= / ^= on a scalar
// target, and plain writes indexed by the loop key (each iteration touches
// a distinct slot).
func commutativeAssign(s *ast.AssignStmt, rs *ast.RangeStmt) bool {
	switch s.Tok {
	case token.ADD_ASSIGN, token.SUB_ASSIGN, token.OR_ASSIGN, token.AND_ASSIGN, token.XOR_ASSIGN:
		return true
	case token.ASSIGN, token.DEFINE:
		if len(s.Lhs) != 1 {
			return false
		}
		ix, ok := s.Lhs[0].(*ast.IndexExpr)
		if !ok {
			return false
		}
		key, ok := rs.Key.(*ast.Ident)
		return ok && exprString(ix.Index) == key.Name
	}
	return false
}

func isDeleteFromRanged(e ast.Expr, rs *ast.RangeStmt) bool {
	call, ok := e.(*ast.CallExpr)
	if !ok || len(call.Args) != 2 {
		return false
	}
	id, ok := call.Fun.(*ast.Ident)
	if !ok || id.Name != "delete" {
		return false
	}
	return exprString(call.Args[0]) == exprString(rs.X)
}

// collectedAndSorted recognizes the collect-then-sort idiom: the body is a
// single `s = append(s, key)` (or value), and some later statement in the
// enclosing block passes s to a sorting call (sort.Slice, sort.Strings,
// a local sortFoo helper, …) before anything else consumes it.
func collectedAndSorted(rs *ast.RangeStmt, following []ast.Stmt) bool {
	if len(rs.Body.List) != 1 {
		return false
	}
	as, ok := rs.Body.List[0].(*ast.AssignStmt)
	if !ok || as.Tok != token.ASSIGN || len(as.Lhs) != 1 || len(as.Rhs) != 1 {
		return false
	}
	target, ok := as.Lhs[0].(*ast.Ident)
	if !ok {
		return false
	}
	call, ok := as.Rhs[0].(*ast.CallExpr)
	if !ok {
		return false
	}
	if id, ok := call.Fun.(*ast.Ident); !ok || id.Name != "append" {
		return false
	}
	if len(call.Args) < 1 || exprString(call.Args[0]) != target.Name {
		return false
	}
	for _, stmt := range following {
		if stmtSorts(stmt, target.Name) {
			return true
		}
	}
	return false
}

// stmtSorts reports whether stmt is a call that sorts the named slice.
func stmtSorts(stmt ast.Stmt, slice string) bool {
	es, ok := stmt.(*ast.ExprStmt)
	if !ok {
		return false
	}
	call, ok := es.X.(*ast.CallExpr)
	if !ok {
		return false
	}
	var fname string
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		fname = fun.Name
	case *ast.SelectorExpr:
		fname = exprString(fun)
	default:
		return false
	}
	if !strings.Contains(strings.ToLower(fname), "sort") {
		return false
	}
	for _, arg := range call.Args {
		if exprString(arg) == slice {
			return true
		}
	}
	return false
}

// exprString renders simple expressions (identifiers, selector chains,
// index expressions) for comparison and messages.
func exprString(e ast.Expr) string {
	switch v := e.(type) {
	case *ast.Ident:
		return v.Name
	case *ast.SelectorExpr:
		return exprString(v.X) + "." + v.Sel.Name
	case *ast.ParenExpr:
		return "(" + exprString(v.X) + ")"
	case *ast.IndexExpr:
		return exprString(v.X) + "[" + exprString(v.Index) + "]"
	case *ast.StarExpr:
		return "*" + exprString(v.X)
	case *ast.CallExpr:
		return exprString(v.Fun) + "(…)"
	case *ast.BinaryExpr:
		return exprString(v.X) + " " + v.Op.String() + " " + exprString(v.Y)
	case *ast.UnaryExpr:
		return v.Op.String() + exprString(v.X)
	case *ast.BasicLit:
		return v.Value
	}
	return "…"
}
