package sim

import (
	"fmt"
	"reflect"
	"testing"

	"phishare/internal/units"
)

// The parallel executor's contract is bit-identical outcomes: every observable
// — the order cross-node effects fire in, the clock each one sees, the total
// step count — must match a serial run of the same workload exactly. The
// tests here drive a synthetic workload whose per-event behavior is a pure
// function of the event's identity (a splitmix64 hash), so the behavior
// cannot depend on execution interleaving; any divergence between the serial
// and parallel logs is an executor bug, not a workload artifact.

func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4b290
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// synthWorkload drives eng with a branching event tree across nLanes node
// lanes plus global barrier events, logging every observable effect through
// the canonical (Global/barrier) context into out.
//
// Adversarial shapes covered, per the barrier-correctness checklist:
//   - same-tick events on different lanes (children scheduled with delta 0,
//     and barrier events fanning out to several lanes at one instant);
//   - a barrier event at the same tick as pending lane events, so the window
//     boundary rule (run iff the assigned seq precedes the global's) decides;
//   - lane timers started and stopped mid-epoch;
//   - deferred global closures scheduling follow-up globals exactly at the
//     lookahead bound.
type synthWorkload struct {
	eng   *Engine
	lanes []*Lane
	out   *[]string
	seed  uint64
	// lookahead mirrors the engine's, so deferred closures can schedule
	// globals legally in both serial and parallel runs.
	lookahead units.Tick
}

const synthMaxGen = 5

func (s *synthWorkload) log(kind string, lane, id int) {
	*s.out = append(*s.out, fmt.Sprintf("%s t=%d lane=%d id=%d", kind, s.eng.Now(), lane, id))
}

// laneEvent is one node-confined event. gen bounds the branching depth; all
// timing and fan-out decisions hash from (seed, id) only.
func (s *synthWorkload) laneEvent(lane, id, gen int) func() {
	return func() {
		l := s.lanes[lane]
		h := splitmix64(s.seed ^ uint64(id)*0x9e37)
		// Canonical-order observable: deferred to the walk in parallel mode,
		// immediate in serial mode; both land in serial order.
		l.Global(func() { s.log("L", lane, id) })
		if gen >= synthMaxGen {
			return
		}
		// Spawn 0–2 same-lane children, deltas 0–3 (delta 0 exercises
		// same-tick tie-breaking against both siblings and barrier events).
		for k := 0; k < int(h%3); k++ {
			ck := splitmix64(h + uint64(k))
			child := id*7 + k + 1
			l.After(units.Tick(ck%4), s.laneEvent(lane, child, gen+1))
		}
		// Sometimes start a lane timer and maybe stop it in a same-tick
		// follow-up — exercising the pooled-timer path inside epochs.
		if h%5 == 0 {
			tm := l.AfterTimer(units.Tick(h%7), s.laneEvent(lane, id*7+5, gen+1))
			if h%10 == 0 {
				l.After(0, func() { tm.Stop() })
			}
		}
		// Sometimes cause a cross-node effect: legal only via Global, and any
		// global event it schedules must respect the lookahead.
		if h%4 == 0 {
			gid := id*7 + 6
			l.Global(func() {
				s.log("D", lane, id)
				delay := s.lookahead + units.Tick(h%3)
				s.eng.After(delay, s.globalEvent(gid, gen+1))
			})
		}
	}
}

// globalEvent is a cross-node barrier event: it sees and mutates state on
// several lanes at one instant, the scheduler/negotiator shape.
func (s *synthWorkload) globalEvent(id, gen int) func() {
	return func() {
		s.log("G", -1, id)
		if gen >= synthMaxGen {
			return
		}
		h := splitmix64(s.seed ^ uint64(id)*0xc2b2)
		// Barrier-stage fan-out: a sharded computation between epochs — the
		// sharded-negotiator shape. Workers write disjoint slots only; the
		// digest logged after the join is independent of worker interleaving
		// by construction, so it must match the serial run bit for bit.
		if h%2 == 0 {
			res := make([]uint64, 8)
			s.eng.Fanout(len(res), func(i int) { res[i] = splitmix64(h + uint64(i)) })
			var dig uint64
			for _, v := range res {
				dig ^= v
			}
			s.log("F", -1, int(dig%1000))
		}
		// Fan out to two lanes at the same tick (delta 0): the classic
		// adversarial case — cross-lane same-instant events whose relative
		// order is fixed by scheduling order, not lane id.
		a := int(h % uint64(len(s.lanes)))
		b := int((h >> 8) % uint64(len(s.lanes)))
		s.lanes[a].After(0, s.laneEvent(a, id*7+1, gen+1))
		s.lanes[b].After(units.Tick(h%2), s.laneEvent(b, id*7+2, gen+1))
		if h%3 == 0 {
			s.eng.After(units.Tick(1+h%5), s.globalEvent(id*7+3, gen+1))
		}
	}
}

// runSynth executes the workload and returns the observable log and the
// final (clock, steps) pair.
func runSynth(seed uint64, parallel bool, workers int) ([]string, units.Tick, uint64) {
	const nLanes = 4
	const lookahead = 5
	eng := New()
	if parallel {
		eng.SetParallel(workers, lookahead)
	}
	var out []string
	s := &synthWorkload{eng: eng, out: &out, seed: seed, lookahead: lookahead}
	for i := 0; i < nLanes; i++ {
		s.lanes = append(s.lanes, eng.NodeLane(i))
	}
	h := splitmix64(seed)
	for i := 0; i < nLanes; i++ {
		s.lanes[i].At(units.Tick(splitmix64(h+uint64(i))%4), s.laneEvent(i, i+1, 0))
	}
	// A barrier event guaranteed to collide with first-epoch lane events.
	eng.At(2, s.globalEvent(1000, 0))
	end := eng.Run()
	return out, end, eng.Steps()
}

// TestParallelBarrierEquivalence is the cross-lane adversarial barrier test:
// for 50 seeds, a workload of same-tick cross-lane events, barrier globals,
// barrier-stage Fanout computations, stopped timers and deferred closures
// must produce a bit-identical observable log, final clock and step count
// under serial execution, single-worker parallel execution, and 4-worker
// parallel execution.
func TestParallelBarrierEquivalence(t *testing.T) {
	for seed := uint64(1); seed <= 50; seed++ {
		wantLog, wantEnd, wantSteps := runSynth(seed, false, 0)
		if len(wantLog) == 0 {
			t.Fatalf("seed %d: empty serial log, workload generator broken", seed)
		}
		for _, workers := range []int{1, 4} {
			gotLog, gotEnd, gotSteps := runSynth(seed, true, workers)
			if gotEnd != wantEnd || gotSteps != wantSteps {
				t.Fatalf("seed %d workers %d: end/steps (%v, %d) != serial (%v, %d)",
					seed, workers, gotEnd, gotSteps, wantEnd, wantSteps)
			}
			if !reflect.DeepEqual(gotLog, wantLog) {
				for i := range wantLog {
					if i >= len(gotLog) || gotLog[i] != wantLog[i] {
						t.Fatalf("seed %d workers %d: log diverges at %d:\n serial:   %q\n parallel: %q",
							seed, workers, i, wantLog[i], eltOr(gotLog, i))
					}
				}
				t.Fatalf("seed %d workers %d: parallel log has %d extra entries, first %q",
					seed, workers, len(gotLog)-len(wantLog), gotLog[len(wantLog)])
			}
		}
	}
}

func eltOr(s []string, i int) string {
	if i < len(s) {
		return s[i]
	}
	return "<missing>"
}

// TestParallelTakesEpochPath proves the equivalence above is not vacuous:
// the parallel runs actually execute epoch windows rather than degenerating
// into an all-barrier serial walk.
func TestParallelTakesEpochPath(t *testing.T) {
	const lookahead = 5
	eng := New()
	eng.SetParallel(4, lookahead)
	var out []string
	s := &synthWorkload{eng: eng, out: &out, seed: 7, lookahead: lookahead}
	for i := 0; i < 4; i++ {
		s.lanes = append(s.lanes, eng.NodeLane(i))
	}
	for i := 0; i < 4; i++ {
		s.lanes[i].At(0, s.laneEvent(i, i+1, 0))
	}
	eng.Run()
	if eng.Epochs() == 0 {
		t.Fatal("parallel run executed zero epochs: everything went through the barrier path")
	}
	if eng.Steps() <= eng.Epochs() {
		t.Fatalf("epochs (%d) should batch multiple steps (%d)", eng.Epochs(), eng.Steps())
	}
}

// TestParallelSetupErrors pins the misuse panics: enabling parallel mode
// after scheduling, non-positive lookahead, and RunUntil on a parallel
// engine.
func TestParallelSetupErrors(t *testing.T) {
	mustPanic := func(name string, fn func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Fatalf("%s: expected panic", name)
			}
		}()
		fn()
	}
	mustPanic("late SetParallel", func() {
		eng := New()
		eng.After(1, func() {})
		eng.SetParallel(2, 1)
	})
	mustPanic("zero lookahead", func() { New().SetParallel(2, 0) })
	mustPanic("RunUntil", func() {
		eng := New()
		eng.SetParallel(2, 1)
		eng.RunUntil(10)
	})
}

// TestParallelEpochGlobalSchedulePanics pins the central misuse guard: a
// node-lane event that schedules a global event directly (instead of
// deferring through Lane.Global) must fail loudly, not silently diverge.
// A second active lane forces the true multi-lane epoch path — a
// single-active-lane window legally runs fused in serial context, where a
// direct global schedule is ordinary serial scheduling.
func TestParallelEpochGlobalSchedulePanics(t *testing.T) {
	eng := New()
	eng.SetParallel(1, 5)
	lane := eng.NodeLane(0)
	eng.NodeLane(1).At(0, func() {})
	lane.At(0, func() {
		defer func() {
			if recover() == nil {
				t.Error("global schedule from epoch context did not panic")
			}
		}()
		eng.After(10, func() {})
	})
	eng.Run()
}

// TestParallelLookaheadViolationPanics pins the conservative-window guard: a
// deferred closure scheduling a global event inside the already-executed
// window is a lookahead bug and must panic.
func TestParallelLookaheadViolationPanics(t *testing.T) {
	eng := New()
	eng.SetParallel(1, 10)
	lane := eng.NodeLane(0)
	// A second active lane forces the multi-lane epoch/walk path (a
	// single-active-lane window runs fused in serial context, where short
	// global delays are legal because nothing runs concurrently).
	eng.NodeLane(1).At(0, func() {})
	caught := false
	lane.At(0, func() {
		lane.Global(func() {
			defer func() {
				if recover() != nil {
					caught = true
				}
			}()
			// Window is [0, 10); scheduling a global at 1 claims a cross-node
			// effect inside an epoch that already ran.
			eng.After(1, func() {})
		})
	})
	// A second lane event widens the window past the violation point.
	lane.At(9, func() {})
	eng.Run()
	if !caught {
		t.Fatal("lookahead violation did not panic")
	}
}

// TestFanoutCoversAllIndices pins Fanout's basic contract: every index runs
// exactly once, on serial and parallel engines alike, including the n <= 1
// and worker-clamped shapes.
func TestFanoutCoversAllIndices(t *testing.T) {
	for _, parallel := range []bool{false, true} {
		eng := New()
		if parallel {
			eng.SetParallel(3, 5)
		}
		for _, n := range []int{0, 1, 2, 16, 100} {
			hits := make([]int32, n)
			eng.Fanout(n, func(i int) { hits[i]++ })
			for i, h := range hits {
				if h != 1 {
					t.Fatalf("parallel=%v n=%d: index %d ran %d times", parallel, n, i, h)
				}
			}
		}
	}
}

// TestFanoutFromEpochPanics pins the confinement guard: Fanout is a
// barrier-stage primitive, so calling it from inside an epoch window (a lane
// event running concurrently with other lanes) must fail loudly.
func TestFanoutFromEpochPanics(t *testing.T) {
	eng := New()
	eng.SetParallel(1, 5)
	lane := eng.NodeLane(0)
	// A second active lane forces the true epoch path; a single-active-lane
	// window runs fused in serial context, where Fanout is legal.
	eng.NodeLane(1).At(0, func() {})
	caught := false
	lane.At(0, func() {
		defer func() {
			if recover() != nil {
				caught = true
			}
		}()
		eng.Fanout(2, func(int) {})
	})
	eng.Run()
	if !caught {
		t.Fatal("Fanout from epoch context did not panic")
	}
}

// TestFanoutPropagatesPanic pins failure delivery: a panic on any Fanout
// worker surfaces to the caller instead of being swallowed by the pool.
func TestFanoutPropagatesPanic(t *testing.T) {
	eng := New()
	defer func() {
		if recover() == nil {
			t.Fatal("worker panic did not propagate")
		}
	}()
	eng.Fanout(8, func(i int) {
		if i == 5 {
			panic("boom")
		}
	})
}

// TestParallelLaneNowAgrees verifies the two-clock story: a lane's Now
// matches the engine clock at consistent points and tracks the lane's own
// progress inside an epoch slice.
func TestParallelLaneNowAgrees(t *testing.T) {
	eng := New()
	eng.SetParallel(1, 100)
	lane := eng.NodeLane(0)
	var at5 units.Tick
	lane.At(5, func() { at5 = lane.Now() })
	eng.Run()
	if at5 != 5 {
		t.Fatalf("lane.Now inside event at t=5: got %v", at5)
	}
	if lane.Now() != eng.Now() {
		t.Fatalf("lane.Now (%v) != eng.Now (%v) after run", lane.Now(), eng.Now())
	}
}
