package sim

// Parallel deterministic execution.
//
// The scheduler's structure guarantees that between cross-node (global)
// events, a node's events touch only that node's state. The parallel
// executor exploits this with a conservative epoch loop:
//
//   - Events live in per-node lane heaps plus one global heap. Lane heaps
//     are keyed by (time, lane push order), the global heap by (time,
//     canonical sequence); within any one heap both keys induce the order a
//     serial engine would pop, because pushes into a lane happen in
//     canonical order (lane execution order equals canonical order within a
//     lane, and barrier-context pushes follow every epoch push that
//     canonically precedes them).
//
//   - Each iteration either executes the next global event serially (a
//     barrier: no lane event precedes it in canonical order), or runs an
//     epoch window: every lane concurrently drains its events with time in
//     [t_min, W), where W = min(next global event's time, t_min +
//     lookahead). The lookahead is the minimum delay by which node-side
//     activity can cause a global event (the Condor notify/dispatch
//     latencies), so no global event can materialize inside a window that
//     is already running. A lane event at exactly the next global event's
//     time runs in the window only if its canonical sequence is already
//     known to precede the global event's; an epoch-born event at that time
//     never does — its serial sequence necessarily follows (sequence
//     numbers grow monotonically, and the global event was scheduled
//     first).
//
//   - During a window, each executed event records an action log: the lane
//     events it scheduled and the closures it deferred with Lane.Global.
//     After the window, the canonical walk merges the per-lane execution
//     logs in (time, canonical sequence) order — every log head's sequence
//     is known by the time it surfaces, because its parent (same lane,
//     earlier in the log) was walked first — and replays each log in
//     emission order: scheduled children receive the exact sequence number
//     the serial engine would have drawn, and deferred closures run with
//     the clock at their event's time. Record streams, sequence numbers and
//     the engine clock therefore evolve exactly as in a serial run, which
//     is what makes parallel outcomes bit-identical.
//
// Everything here is driven from Run; workers only ever touch their own
// lane's heap, clock and free lists, so the epoch fork/join is the only
// synchronization.

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	"phishare/internal/units"
)

// SetParallel switches the engine to parallel lane execution with the given
// worker count (<= 0 selects GOMAXPROCS) and conservative lookahead: the
// smallest delay by which a node-lane event may cause a global event
// (for the Condor stack, min(NotifyDelay, DispatchLatency)). It must be
// called before any event is scheduled. Outcomes are bit-identical to
// serial execution; only wall-clock time changes.
func (e *Engine) SetParallel(workers int, lookahead units.Tick) {
	if e.seq != 0 || e.steps != 0 {
		panic("sim: SetParallel must be called before any event is scheduled")
	}
	if lookahead <= 0 {
		panic(fmt.Sprintf("sim: parallel execution needs a positive lookahead, got %v", lookahead))
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	e.parallel = true
	e.workers = workers
	e.lookahead = lookahead
}

// Parallel reports whether the engine runs lanes in parallel.
func (e *Engine) Parallel() bool { return e.parallel }

// Workers returns the parallel worker count (0 in serial mode).
func (e *Engine) Workers() int { return e.workers }

// Epochs reports how many parallel epoch windows have executed. Serial
// engines report 0; a parallel run's ratio of Steps to Epochs is the mean
// window width, the quantity the lookahead fight is about.
func (e *Engine) Epochs() uint64 { return e.epochs }

// runParallel is Run for a parallel engine.
func (e *Engine) runParallel() units.Tick {
	for {
		var g *event
		if len(e.events) > 0 {
			g = e.events[0]
		}
		var tmin units.Tick
		haveLane, laneFirst := false, false
		for _, l := range e.lanes {
			if len(l.heap) == 0 {
				continue
			}
			h := l.heap[0]
			if !haveLane || h.at < tmin {
				tmin = h.at
			}
			haveLane = true
			if g != nil && (h.at < g.at || (h.at == g.at && h.seq != 0 && h.seq < g.seq)) {
				laneFirst = true
			}
		}
		switch {
		case !haveLane && g == nil:
			return e.now
		case g != nil && !laneFirst:
			// The global event precedes every lane event: execute it
			// serially. This is the barrier — negotiation, dispatch, fault
			// injection and admission all run here, alone, with the merged
			// state of every lane visible.
			e.step()
		default:
			w := tmin + e.lookahead
			bounded := false
			var gseq uint64
			if g != nil && g.at <= w {
				w, bounded, gseq = g.at, true, g.seq
			}
			e.runEpoch(w, bounded, gseq)
		}
	}
}

// runEpoch executes one window of lane events on the worker pool, then
// performs the canonical walk and runs the AfterStep hook at the resulting
// consistent point.
func (e *Engine) runEpoch(w units.Tick, bounded bool, gseq uint64) {
	active := e.laneScratch[:0]
	for _, l := range e.lanes {
		if l.runnable(w, bounded, gseq) {
			active = append(active, l)
		}
	}
	e.laneScratch = active[:0] // retain capacity for the next epoch

	e.epochs++
	if len(active) == 1 {
		// Single-lane window: canonical order restricted to one lane is the
		// lane's own order, so the window can run serially in barrier
		// context — sequence numbers assigned at scheduling time, Global
		// closures immediate, no log, no walk. This is the common window
		// shape whenever activity clusters on one node, and it makes the
		// parallel engine's single-active-lane throughput match the serial
		// engine's.
		active[0].runFused(w, bounded, gseq)
		if e.AfterStep != nil {
			e.AfterStep()
		}
		return
	}
	e.ctx = ctxEpoch
	n := e.workers
	if n > len(active) {
		n = len(active)
	}
	if n <= 1 {
		for _, l := range active {
			l.runSlice(w, bounded, gseq)
		}
	} else {
		fanWork(len(active), n, func(k int) {
			active[k].runSlice(w, bounded, gseq)
		})
	}
	e.ctx = ctxSerial

	e.walk(active, w)
	if e.AfterStep != nil {
		e.AfterStep()
	}
}

// fanWork distributes indices [0, n) over w worker goroutines with an
// atomic work-stealing counter, waits for all of them, and re-raises the
// first panic any worker hit. It is the one goroutine-spawn site shared by
// the epoch executor and Fanout.
func fanWork(n, w int, fn func(int)) {
	var (
		next int64
		wg   sync.WaitGroup
		mu   sync.Mutex
		rec  any
	)
	for i := 0; i < w; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			defer func() {
				if r := recover(); r != nil {
					mu.Lock()
					if rec == nil {
						rec = r
					}
					mu.Unlock()
				}
			}()
			for {
				k := atomic.AddInt64(&next, 1) - 1
				if k >= int64(n) {
					return
				}
				fn(int(k))
			}
		}()
	}
	wg.Wait()
	if rec != nil {
		panic(rec)
	}
}

// Fanout runs fn(0), …, fn(n-1) on the engine's worker pool and returns
// once every call has completed. It is the barrier-stage fan-out hook for
// deterministic parallel phases inside a single event: the sharded Condor
// negotiator runs its per-shard matchmaking scans through it between event
// barriers. The contract mirrors the lane discipline: the n calls must be
// mutually independent — each may read shared snapshot state but write only
// its own shard's — and every cross-shard effect must be applied by the
// caller after Fanout returns, in a canonical order, so outcomes stay
// bit-identical regardless of worker interleaving.
//
// Fanout is legal from serial code and from barrier context (a global
// event executing between epochs); calling it from an epoch window or from
// a closure replayed by the canonical walk panics. On a serial engine the
// worker count defaults to GOMAXPROCS; a parallel engine reuses its
// configured worker count. n or workers of 1 degenerate to an inline loop.
func (e *Engine) Fanout(n int, fn func(int)) {
	if n <= 0 {
		return
	}
	if e.ctx != ctxSerial {
		panic("sim: Fanout outside barrier context (called from an epoch window or canonical walk)")
	}
	w := e.workers
	if w <= 0 {
		w = runtime.GOMAXPROCS(0)
	}
	if w > n {
		w = n
	}
	if w <= 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	fanWork(n, w, fn)
}

// runnable reports whether the lane's next event falls inside the window.
func (l *Lane) runnable(w units.Tick, bounded bool, gseq uint64) bool {
	if len(l.heap) == 0 {
		return false
	}
	h := l.heap[0]
	return h.at < w || (bounded && h.at == w && h.seq != 0 && h.seq < gseq)
}

// runSlice drains the lane's window on the calling worker goroutine.
func (l *Lane) runSlice(w units.Tick, bounded bool, gseq uint64) {
	l.running = true
	for len(l.heap) > 0 {
		h := l.heap[0]
		if !(h.at < w || (bounded && h.at == w && h.seq != 0 && h.seq < gseq)) {
			break
		}
		ev := l.heap.pop()
		if ev.at < l.now {
			panic("sim: lane heap corrupted: time went backwards")
		}
		l.now = ev.at
		l.cur = ev
		if tm := ev.tm; tm != nil {
			tm.ev = nil
			if !tm.stopped {
				ev.fn()
			}
			ev.tm = nil
			l.tmFree = append(l.tmFree, tm)
		} else {
			ev.fn()
		}
		ev.fn = nil
		l.cur = nil
		l.log = append(l.log, ev)
	}
	l.running = false
}

// runFused drains a single-active-lane window in barrier (serial) context on
// the coordinator: pops come off the lane's heap, but scheduling and clock
// semantics are exactly the serial engine's, so children draw their real
// sequence numbers immediately and deferred closures never exist. New global
// events land at or past the window's end (the lookahead argument), so the
// window predicate needs no re-evaluation against them.
func (l *Lane) runFused(w units.Tick, bounded bool, gseq uint64) {
	e := l.eng
	for len(l.heap) > 0 {
		h := l.heap[0]
		if !(h.at < w || (bounded && h.at == w && h.seq != 0 && h.seq < gseq)) {
			break
		}
		ev := l.heap.pop()
		if ev.at < e.now {
			panic("sim: lane heap corrupted: time went backwards")
		}
		e.now, l.now = ev.at, ev.at
		e.steps++
		if e.MaxSteps != 0 && e.steps > e.MaxSteps {
			panic(fmt.Sprintf("sim: exceeded MaxSteps=%d at t=%v (runaway event loop?)", e.MaxSteps, e.now))
		}
		if tm := ev.tm; tm != nil {
			tm.ev = nil
			if !tm.stopped {
				ev.fn()
			}
			ev.tm = nil
			l.tmFree = append(l.tmFree, tm)
		} else {
			ev.fn()
		}
		ev.fn = nil
		ev.lane = nil
		l.free = append(l.free, ev)
	}
}

// laneLess orders two lanes by their current log heads' canonical keys.
func laneLess(a, b *Lane) bool {
	x, y := a.log[a.logPos], b.log[b.logPos]
	if x.at != y.at {
		return x.at < y.at
	}
	return x.seq < y.seq
}

// walk merges the window's per-lane execution logs in canonical order,
// assigning every epoch-born event the exact sequence number a serial
// engine would have drawn and replaying deferred global closures at their
// serial positions. Window w bounds where replayed closures may schedule
// global events (the lookahead guarantee, enforced in Lane.schedule).
func (e *Engine) walk(active []*Lane, w units.Tick) {
	e.ctx = ctxWalk
	e.walkBound = w

	// Small min-heap of lanes keyed by log head.
	h := e.mergeScratch[:0]
	for _, l := range active {
		if l.logPos >= len(l.log) {
			continue
		}
		h = append(h, l)
		for j := len(h) - 1; j > 0; {
			p := (j - 1) / 2
			if !laneLess(h[j], h[p]) {
				break
			}
			h[j], h[p] = h[p], h[j]
			j = p
		}
	}
	siftDown := func() {
		n := len(h)
		j := 0
		for {
			l, r := 2*j+1, 2*j+2
			smallest := j
			if l < n && laneLess(h[l], h[smallest]) {
				smallest = l
			}
			if r < n && laneLess(h[r], h[smallest]) {
				smallest = r
			}
			if smallest == j {
				break
			}
			h[j], h[smallest] = h[smallest], h[j]
			j = smallest
		}
	}

	for len(h) > 0 {
		l := h[0]
		ev := l.log[l.logPos]
		if ev.seq == 0 {
			panic("sim: canonical walk reached an event with no assigned sequence")
		}
		if ev.at < e.now {
			panic("sim: canonical walk went backwards in time")
		}
		e.now = ev.at
		e.steps++
		l.logPos++
		for i := range ev.acts {
			a := &ev.acts[i]
			switch {
			case a.child != nil:
				// The serial engine would have drawn the next sequence
				// number right here.
				e.seq++
				a.child.seq = e.seq
				a.child = nil
			case a.flush:
				// A lane-local collector buffered one record during the
				// epoch; hand it to the canonical consumer at this event's
				// serial position (DeferFlush guarantees the hook is set).
				a.flush = false
				e.laneFlush(l)
			default:
				fn := a.global
				a.global = nil
				fn()
			}
		}
		ev.acts = ev.acts[:0]
		ev.lane = nil
		l.free = append(l.free, ev)
		if l.logPos >= len(l.log) {
			// Lane exhausted: remove it from the merge heap.
			n := len(h) - 1
			h[0] = h[n]
			h[n] = nil
			h = h[:n]
		}
		siftDown()
	}
	for _, l := range active {
		l.log = l.log[:0]
		l.logPos = 0
	}
	e.mergeScratch = h[:0]

	e.walkBound = 0
	e.ctx = ctxSerial
	if e.MaxSteps != 0 && e.steps > e.MaxSteps {
		panic(fmt.Sprintf("sim: exceeded MaxSteps=%d at t=%v (runaway event loop?)", e.MaxSteps, e.now))
	}
}
