package sim

import (
	"testing"

	"phishare/internal/units"
)

func TestRunEmpty(t *testing.T) {
	e := New()
	if final := e.Run(); final != 0 {
		t.Errorf("empty Run ended at %v, want 0", final)
	}
}

func TestEventOrdering(t *testing.T) {
	e := New()
	var order []int
	e.At(30, func() { order = append(order, 3) })
	e.At(10, func() { order = append(order, 1) })
	e.At(20, func() { order = append(order, 2) })
	e.Run()
	if len(order) != 3 || order[0] != 1 || order[1] != 2 || order[2] != 3 {
		t.Errorf("events fired in order %v, want [1 2 3]", order)
	}
}

func TestTieBreakBySchedulingOrder(t *testing.T) {
	e := New()
	var order []int
	for i := 0; i < 10; i++ {
		i := i
		e.At(5, func() { order = append(order, i) })
	}
	e.Run()
	for i, v := range order {
		if v != i {
			t.Fatalf("same-time events fired out of order: %v", order)
		}
	}
}

func TestClockAdvances(t *testing.T) {
	e := New()
	var seen []units.Tick
	e.At(100, func() { seen = append(seen, e.Now()) })
	e.At(250, func() { seen = append(seen, e.Now()) })
	final := e.Run()
	if final != 250 {
		t.Errorf("final time %v, want 250", final)
	}
	if len(seen) != 2 || seen[0] != 100 || seen[1] != 250 {
		t.Errorf("observed times %v, want [100 250]", seen)
	}
}

func TestAfterRelative(t *testing.T) {
	e := New()
	var at units.Tick
	e.At(100, func() {
		e.After(50, func() { at = e.Now() })
	})
	e.Run()
	if at != 150 {
		t.Errorf("After fired at %v, want 150", at)
	}
}

func TestEventsCanScheduleEvents(t *testing.T) {
	e := New()
	count := 0
	var tick func()
	tick = func() {
		count++
		if count < 5 {
			e.After(10, tick)
		}
	}
	e.After(10, tick)
	final := e.Run()
	if count != 5 {
		t.Errorf("chained %d events, want 5", count)
	}
	if final != 50 {
		t.Errorf("final time %v, want 50", final)
	}
}

func TestSchedulingInPastPanics(t *testing.T) {
	e := New()
	e.At(100, func() {
		defer func() {
			if recover() == nil {
				t.Error("scheduling in the past did not panic")
			}
		}()
		e.At(50, func() {})
	})
	e.Run()
}

func TestNegativeAfterPanics(t *testing.T) {
	e := New()
	defer func() {
		if recover() == nil {
			t.Error("negative After did not panic")
		}
	}()
	e.After(-1, func() {})
}

func TestRunUntil(t *testing.T) {
	e := New()
	var fired []units.Tick
	for _, at := range []units.Tick{10, 20, 30, 40} {
		at := at
		e.At(at, func() { fired = append(fired, at) })
	}
	e.RunUntil(25)
	if len(fired) != 2 {
		t.Fatalf("RunUntil(25) fired %v, want events at 10 and 20", fired)
	}
	if e.Now() != 25 {
		t.Errorf("clock at %v after RunUntil(25)", e.Now())
	}
	e.RunUntil(40) // inclusive boundary
	if len(fired) != 4 {
		t.Errorf("RunUntil(40) left %d fired, want 4 (boundary inclusive)", len(fired))
	}
}

func TestRunUntilAdvancesIdleClock(t *testing.T) {
	e := New()
	e.RunUntil(500)
	if e.Now() != 500 {
		t.Errorf("idle RunUntil left clock at %v, want 500", e.Now())
	}
}

func TestTimerStop(t *testing.T) {
	e := New()
	fired := false
	tm := e.AfterTimer(10, func() { fired = true })
	tm.Stop()
	e.Run()
	if fired {
		t.Error("stopped timer fired")
	}
	if !tm.Stopped() {
		t.Error("Stopped() = false after Stop")
	}
}

func TestTimerFiresWhenNotStopped(t *testing.T) {
	e := New()
	fired := false
	e.AfterTimer(10, func() { fired = true })
	e.Run()
	if !fired {
		t.Error("timer did not fire")
	}
}

func TestTimerStopAfterFireIsNoop(t *testing.T) {
	e := New()
	count := 0
	tm := e.AfterTimer(10, func() { count++ })
	e.Run()
	tm.Stop()
	if count != 1 {
		t.Errorf("timer fired %d times, want 1", count)
	}
}

// TestTimerStopRemovesQueuedEvent pins the true-removal contract: Stop takes
// the event out of the heap immediately (Pending drops) and recycles both
// event and timer, so a churn of start/stop cycles cannot grow the heap.
// Before heap-index tracking, a stopped timer left a dead closure queued
// until its deadline — unbounded growth under supersede-heavy workloads.
func TestTimerStopRemovesQueuedEvent(t *testing.T) {
	e := New()
	base := e.Pending()
	tm := e.AfterTimer(1000, func() { t.Error("stopped timer fired") })
	if e.Pending() != base+1 {
		t.Fatalf("Pending = %d after schedule, want %d", e.Pending(), base+1)
	}
	tm.Stop()
	if e.Pending() != base {
		t.Fatalf("Pending = %d after Stop, want %d (event not removed)", e.Pending(), base)
	}
	// Churn: every start is immediately superseded. With true removal the
	// queue stays at one live event; without it, the heap accrues a dead
	// closure per iteration.
	for i := 0; i < 10_000; i++ {
		tm = e.AfterTimer(units.Tick(1000+i), func() { t.Error("superseded timer fired") })
		tm.Stop()
	}
	if e.Pending() != base {
		t.Fatalf("Pending = %d after churn, want %d", e.Pending(), base)
	}
	// The heap still orders correctly after mid-heap removals interleaved
	// with live events.
	var order []int
	for _, d := range []units.Tick{30, 10, 20} {
		d := d
		e.After(d, func() { order = append(order, int(d)) })
	}
	doomed := e.AfterTimer(15, func() { t.Error("doomed timer fired") })
	doomed.Stop()
	e.Run()
	if len(order) != 3 || order[0] != 10 || order[1] != 20 || order[2] != 30 {
		t.Fatalf("fire order %v, want [10 20 30]", order)
	}
}

// TestLaneTimerStopRemovesQueuedEvent is the lane-heap variant: Stop on a
// node-lane timer removes the event from the lane's private heap and returns
// both objects to the lane pools.
func TestLaneTimerStopRemovesQueuedEvent(t *testing.T) {
	e := New()
	l := e.NodeLane(0)
	base := e.Pending()
	for i := 0; i < 1000; i++ {
		tm := l.AfterTimer(units.Tick(100+i), func() { t.Error("stopped lane timer fired") })
		tm.Stop()
	}
	if e.Pending() != base {
		t.Fatalf("Pending = %d after lane-timer churn, want %d", e.Pending(), base)
	}
	fired := false
	l.AfterTimer(5, func() { fired = true })
	e.Run()
	if !fired {
		t.Fatal("live lane timer did not fire after churned stops")
	}
}

func TestMaxStepsGuard(t *testing.T) {
	e := New()
	e.MaxSteps = 100
	var loop func()
	loop = func() { e.After(1, loop) }
	e.After(1, loop)
	defer func() {
		if recover() == nil {
			t.Error("runaway loop did not trip MaxSteps")
		}
	}()
	e.Run()
}

func TestStepsCounting(t *testing.T) {
	e := New()
	for i := 0; i < 7; i++ {
		e.At(units.Tick(i), func() {})
	}
	e.Run()
	if e.Steps() != 7 {
		t.Errorf("Steps() = %d, want 7", e.Steps())
	}
}

func TestPending(t *testing.T) {
	e := New()
	e.At(1, func() {})
	e.At(2, func() {})
	if e.Pending() != 2 {
		t.Errorf("Pending() = %d, want 2", e.Pending())
	}
	e.Run()
	if e.Pending() != 0 {
		t.Errorf("Pending() after Run = %d, want 0", e.Pending())
	}
}

// TestDeterministicReplay runs an identical randomized workload twice and
// requires identical event traces.
func TestDeterministicReplay(t *testing.T) {
	run := func() []units.Tick {
		e := New()
		var trace []units.Tick
		// A little self-perpetuating workload with same-time collisions.
		for i := 0; i < 20; i++ {
			at := units.Tick((i * 7) % 13)
			e.At(at, func() {
				trace = append(trace, e.Now())
				if e.Now() < 40 {
					e.After(3, func() { trace = append(trace, e.Now()) })
				}
			})
		}
		e.Run()
		return trace
	}
	a, b := run(), run()
	if len(a) != len(b) {
		t.Fatalf("trace lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("traces diverge at %d: %v vs %v", i, a[i], b[i])
		}
	}
}

// TestEventPoolReuse pins the free-list optimization: once the engine has
// warmed up, a steady schedule-fire cycle must not allocate event structs.
func TestEventPoolReuse(t *testing.T) {
	e := New()
	fn := func() {}
	// Warm the free list.
	for i := 0; i < 32; i++ {
		e.After(1, fn)
	}
	e.Run()
	allocs := testing.AllocsPerRun(200, func() {
		e.After(1, fn)
		e.Run()
	})
	if allocs > 0 {
		t.Errorf("steady-state schedule+run allocates %.1f objects/op, want 0", allocs)
	}
}

// TestEventPoolOrderingUnchanged floods the engine through many
// pool-recycled events with colliding timestamps and checks FIFO order
// within an instant survives recycling (seq is rewritten on every reuse).
func TestEventPoolOrderingUnchanged(t *testing.T) {
	e := New()
	var got []int
	for round := 0; round < 50; round++ {
		r := round
		e.At(units.Tick(10*round), func() {
			for k := 0; k < 4; k++ {
				kk := k
				e.After(5, func() { got = append(got, r*10+kk) })
			}
		})
	}
	e.Run()
	if len(got) != 200 {
		t.Fatalf("fired %d events, want 200", len(got))
	}
	for i := 1; i < len(got); i++ {
		if got[i] <= got[i-1] {
			t.Fatalf("order violated at %d: %d after %d", i, got[i], got[i-1])
		}
	}
}
