// Package sim implements the deterministic discrete-event engine that drives
// the cluster simulation.
//
// Every component in the system — Xeon Phi devices, COSMIC offload queues,
// Condor negotiation cycles, job phase transitions — advances by scheduling
// callbacks on a single Engine. The engine maintains a priority queue of
// events ordered by (time, insertion sequence); the sequence number breaks
// ties so that two events at the same instant always fire in the order they
// were scheduled, which makes simulations bit-for-bit reproducible across
// runs and platforms.
//
// The engine is single-goroutine by design: real HPC cluster middleware is
// concurrent, but a scheduler study needs a causally ordered, replayable
// timeline far more than it needs parallel execution. (The experiment
// harness parallelizes at a coarser grain, running independent simulations
// on separate engines.)
package sim

import (
	"fmt"

	"phishare/internal/units"
)

// Event is a scheduled callback.
type event struct {
	at  units.Tick
	seq uint64
	fn  func()
}

// eventHeap is a binary min-heap of events ordered by time, then by
// insertion order. The heap code is inlined (rather than going through
// container/heap's interface) so pushes and pops stay monomorphic and
// allocation-free; the (at, seq) key is a total order, so the pop sequence
// is identical to container/heap's regardless of internal layout.
type eventHeap []*event

func (h eventHeap) less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}

func (h *eventHeap) push(ev *event) {
	*h = append(*h, ev)
	j := len(*h) - 1
	for j > 0 {
		parent := (j - 1) / 2
		if !(*h).less(j, parent) {
			break
		}
		(*h)[j], (*h)[parent] = (*h)[parent], (*h)[j]
		j = parent
	}
}

func (h *eventHeap) pop() *event {
	old := *h
	n := len(old) - 1
	ev := old[0]
	old[0] = old[n]
	old[n] = nil
	old = old[:n]
	*h = old
	// Sift the relocated root down.
	j := 0
	for {
		l, r := 2*j+1, 2*j+2
		smallest := j
		if l < n && old.less(l, smallest) {
			smallest = l
		}
		if r < n && old.less(r, smallest) {
			smallest = r
		}
		if smallest == j {
			break
		}
		old[j], old[smallest] = old[smallest], old[j]
		j = smallest
	}
	return ev
}

// Engine is a discrete-event simulation engine.
// The zero value is ready to use, with the clock at 0.
type Engine struct {
	now    units.Tick
	events eventHeap
	// free is the event free list: fired events return here and are reused
	// by the next At, so a steady-state simulation stops allocating per
	// event entirely (the engine processes hundreds of thousands of events
	// per run; see BenchmarkSimEngine).
	free  []*event
	seq   uint64
	steps uint64
	// MaxSteps, if non-zero, bounds the number of events processed by Run;
	// exceeding it panics. It is a guard against accidental event loops
	// (e.g. a scheduler that reschedules itself at the current instant).
	MaxSteps uint64
	// AfterStep, if set, runs after every processed event, once the event's
	// callback has returned. The invariant checker (internal/faults) uses it
	// to audit conservation laws at every event boundary. The hook must be
	// read-only with respect to simulated outcomes: it is not an event, so
	// it consumes no sequence numbers and cannot reorder anything, but a
	// hook that mutates component state would still corrupt the run. A nil
	// hook costs one comparison per step.
	AfterStep func()
}

// New returns a fresh engine with the clock at zero.
func New() *Engine { return &Engine{} }

// Now returns the current simulated time.
func (e *Engine) Now() units.Tick { return e.now }

// Steps reports how many events have been processed so far.
func (e *Engine) Steps() uint64 { return e.steps }

// Pending reports how many events are queued.
func (e *Engine) Pending() int { return len(e.events) }

// At schedules fn to run at absolute time t. Scheduling in the past panics:
// a component asking for time travel is always a bug in the caller.
func (e *Engine) At(t units.Tick, fn func()) {
	if t < e.now {
		panic(fmt.Sprintf("sim: event scheduled at %v, before now %v", t, e.now))
	}
	e.seq++
	var ev *event
	if n := len(e.free); n > 0 {
		ev = e.free[n-1]
		e.free[n-1] = nil
		e.free = e.free[:n-1]
		ev.at, ev.seq, ev.fn = t, e.seq, fn
	} else {
		ev = &event{at: t, seq: e.seq, fn: fn}
	}
	e.events.push(ev)
}

// After schedules fn to run d ticks from now. Negative d panics.
func (e *Engine) After(d units.Tick, fn func()) {
	if d < 0 {
		panic(fmt.Sprintf("sim: negative delay %v", d))
	}
	e.At(e.now+d, fn)
}

// Run processes events until the queue is empty and returns the final clock
// value. Events may schedule further events.
func (e *Engine) Run() units.Tick {
	for len(e.events) > 0 {
		e.step()
	}
	return e.now
}

// RunUntil processes events with time <= t, then advances the clock to t
// (if it is not already past it) and returns. Events scheduled at exactly t
// are processed.
func (e *Engine) RunUntil(t units.Tick) {
	for len(e.events) > 0 && e.events[0].at <= t {
		e.step()
	}
	if e.now < t {
		e.now = t
	}
}

func (e *Engine) step() {
	ev := e.events.pop()
	if ev.at < e.now {
		panic("sim: event heap corrupted: time went backwards")
	}
	e.now = ev.at
	e.steps++
	if e.MaxSteps != 0 && e.steps > e.MaxSteps {
		panic(fmt.Sprintf("sim: exceeded MaxSteps=%d at t=%v (runaway event loop?)", e.MaxSteps, e.now))
	}
	fn := ev.fn
	// Recycle before running the callback would be wrong: fn may panic and
	// leave a half-cleared event reachable. Release after it returns; the
	// callback's own scheduling draws from the free list populated by
	// earlier steps.
	fn()
	ev.fn = nil // drop the closure so its captures can be collected
	e.free = append(e.free, ev)
	if e.AfterStep != nil {
		e.AfterStep()
	}
}

// Timer is a cancelable scheduled event. It is used by components that may
// need to retract a pending action, e.g. COSMIC retracting the completion of
// an offload whose job was killed by the memory container.
type Timer struct {
	stopped bool
}

// AtTimer schedules fn at absolute time t and returns a handle that can stop
// it. A stopped timer's callback is silently skipped when its time arrives.
func (e *Engine) AtTimer(t units.Tick, fn func()) *Timer {
	tm := &Timer{}
	e.At(t, func() {
		if !tm.stopped {
			fn()
		}
	})
	return tm
}

// AfterTimer schedules fn after delay d and returns a cancelable handle.
func (e *Engine) AfterTimer(d units.Tick, fn func()) *Timer {
	return e.AtTimer(e.now+d, fn)
}

// Stop cancels the timer. Stopping an already-fired or already-stopped timer
// is a no-op.
func (t *Timer) Stop() { t.stopped = true }

// Stopped reports whether Stop has been called.
func (t *Timer) Stopped() bool { return t.stopped }
