// Package sim implements the deterministic discrete-event engine that drives
// the cluster simulation.
//
// Every component in the system — Xeon Phi devices, COSMIC offload queues,
// Condor negotiation cycles, job phase transitions — advances by scheduling
// callbacks on a single Engine. The engine maintains a priority queue of
// events ordered by (time, insertion sequence); the sequence number breaks
// ties so that two events at the same instant always fire in the order they
// were scheduled, which makes simulations bit-for-bit reproducible across
// runs and platforms.
//
// Scheduling goes through Lane handles. A Lane declares the node scope of
// everything scheduled on it: node lanes (NodeLane) carry events that touch
// only that node's state — device completion ticks, link DMA progress, host
// phase steps, COSMIC queue pumps — while the global lane (the Engine's own
// At/After methods) carries cross-node events: negotiation cycles, dispatch
// handshakes, fault injection. In the default serial mode the distinction is
// free — one heap, one clock, exactly the classic engine — but it is what
// lets the parallel executor (see parallel.go) run node lanes concurrently
// between global events while keeping every observable outcome, including
// same-instant tie-breaks, bit-identical to a serial run.
package sim

import (
	"fmt"

	"phishare/internal/units"
)

// event is a scheduled callback.
type event struct {
	at units.Tick
	// seq is the canonical sequence number: the value the serial engine
	// would have assigned at the same scheduling point. In parallel mode an
	// event born inside an epoch has seq 0 until the canonical walk reaches
	// its parent and assigns the exact serial value (valid seqs start at 1).
	seq uint64
	// hseq is the heap-ordering key: equal to seq for serial and global
	// scheduling, a per-lane push counter for lane scheduling in parallel
	// mode. Within one heap, (at, hseq) order always agrees with the
	// canonical (at, seq) order — see the invariant note in parallel.go.
	hseq uint64
	lane *Lane // owning lane; nil for global events
	fn   func()
	// tm, when non-nil, makes this a cancelable timer event: Timer.Stop
	// removes the event from its owning heap, and the Timer struct returns
	// to the free list once the event fires or is stopped.
	tm *Timer
	// idx is the event's current position in its owning heap, maintained by
	// every sift so Timer.Stop can remove a queued event in O(log n). -1
	// while the event is not queued (executing, logged, or on a free list).
	idx int
	// acts is the action log recorded while the event executes inside a
	// parallel epoch: the events it scheduled and the global closures it
	// deferred, in emission order, replayed by the canonical walk.
	acts []action
}

// action is one entry of an epoch event's action log.
type action struct {
	child  *event // a lane event this event scheduled (seq assigned at walk)
	global func() // a deferred cross-node closure (run at walk, in canonical order)
	// flush marks a lane-buffer drain point recorded with Lane.DeferFlush:
	// the canonical walk calls the engine's registered lane-flush hook here,
	// letting a lane-local collector (the observability shards) hand one
	// buffered record to its canonical consumer at this event's exact serial
	// position, interleaved with deferred closures in emission order.
	flush bool
}

// eventHeap is a binary min-heap of events ordered by time, then by
// insertion order. The heap code is inlined (rather than going through
// container/heap's interface) so pushes and pops stay monomorphic and
// allocation-free; the (at, hseq) key is a total order, so the pop sequence
// is identical to container/heap's regardless of internal layout.
type eventHeap []*event

func (h eventHeap) less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].hseq < h[j].hseq
}

func (h eventHeap) swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].idx = i
	h[j].idx = j
}

// siftUp restores the heap property upward from position j.
func (h eventHeap) siftUp(j int) {
	for j > 0 {
		parent := (j - 1) / 2
		if !h.less(j, parent) {
			break
		}
		h.swap(j, parent)
		j = parent
	}
}

// siftDown restores the heap property downward from position j.
func (h eventHeap) siftDown(j int) {
	n := len(h)
	for {
		l, r := 2*j+1, 2*j+2
		smallest := j
		if l < n && h.less(l, smallest) {
			smallest = l
		}
		if r < n && h.less(r, smallest) {
			smallest = r
		}
		if smallest == j {
			break
		}
		h.swap(j, smallest)
		j = smallest
	}
}

func (h *eventHeap) push(ev *event) {
	*h = append(*h, ev)
	ev.idx = len(*h) - 1
	(*h).siftUp(ev.idx)
}

func (h *eventHeap) pop() *event {
	return h.remove(0)
}

// remove extracts the event at heap position i (the minimum when i == 0),
// preserving the heap property. The removed event's idx is set to -1.
func (h *eventHeap) remove(i int) *event {
	old := *h
	n := len(old) - 1
	ev := old[i]
	ev.idx = -1
	old[i] = old[n]
	old[n] = nil
	old = old[:n]
	*h = old
	if i < n {
		moved := old[i] // the relocated last element
		moved.idx = i
		// The relocated event may violate the property in either direction
		// (it came from an unrelated subtree when i is mid-heap).
		old.siftDown(i)
		old.siftUp(moved.idx)
	}
	return ev
}

// Execution context of the engine. Serial mode never leaves ctxSerial; the
// parallel executor flips to ctxEpoch while worker goroutines drain lane
// heaps and to ctxWalk during the canonical merge that follows each epoch.
const (
	ctxSerial = iota // serial engine, or a parallel engine between epochs (barrier context)
	ctxEpoch         // lane workers executing an epoch window
	ctxWalk          // canonical walk replaying deferred actions
)

// Engine is a discrete-event simulation engine.
// The zero value is ready to use, with the clock at 0.
type Engine struct {
	now    units.Tick
	events eventHeap
	// free is the event free list: fired events return here and are reused
	// by the next At, so a steady-state simulation stops allocating per
	// event entirely (the engine processes hundreds of thousands of events
	// per run; see BenchmarkSimEngine).
	free   []*event
	tmFree []*Timer
	seq    uint64
	steps  uint64
	// MaxSteps, if non-zero, bounds the number of events processed by Run;
	// exceeding it panics. It is a guard against accidental event loops
	// (e.g. a scheduler that reschedules itself at the current instant).
	MaxSteps uint64
	// AfterStep, if set, runs after every processed event, once the event's
	// callback has returned. The invariant checker (internal/faults) uses it
	// to audit conservation laws at every event boundary. The hook must be
	// read-only with respect to simulated outcomes: it is not an event, so
	// it consumes no sequence numbers and cannot reorder anything, but a
	// hook that mutates component state would still corrupt the run. A nil
	// hook costs one comparison per step.
	//
	// In parallel mode the hook runs at every globally consistent point —
	// after each barrier event and after each epoch's canonical walk —
	// rather than after every lane event; state invariants that hold at
	// every serial event boundary hold at every such point.
	AfterStep func()

	// Parallel-execution state; zero/unused in serial mode.
	parallel  bool
	workers   int
	lookahead units.Tick
	epochs    uint64
	ctx       int
	lanes     []*Lane
	global    Lane
	// walkBound is the current epoch window's end while ctx == ctxWalk:
	// a replayed closure scheduling a global event before it would mean the
	// epoch ran past a cross-node effect (a lookahead violation).
	walkBound    units.Tick
	laneScratch  []*Lane
	mergeScratch []*Lane
	// laneFlush is the registered lane-buffer drain hook (see SetLaneFlush).
	laneFlush func(*Lane)
}

// SetLaneFlush registers the hook the canonical walk calls for every flush
// point recorded with Lane.DeferFlush, in canonical (time, seq) order and in
// emission order within an event. A lane-local collector (the observability
// layer's per-lane shards) registers the hook once and uses it to drain its
// buffers into a canonically ordered consumer. One hook per engine; the sim
// package itself never records flush points, so an engine without a
// registered hook never calls it.
func (e *Engine) SetLaneFlush(fn func(*Lane)) { e.laneFlush = fn }

// New returns a fresh engine with the clock at zero.
func New() *Engine {
	e := &Engine{}
	e.global.eng = e
	e.global.id = -1
	return e
}

// Now returns the current simulated time.
func (e *Engine) Now() units.Tick { return e.now }

// Steps reports how many events have been processed so far.
func (e *Engine) Steps() uint64 { return e.steps }

// Pending reports how many events are queued.
func (e *Engine) Pending() int {
	n := len(e.events)
	for _, l := range e.lanes {
		n += len(l.heap)
	}
	return n
}

// GlobalLane returns the engine's cross-node lane. Scheduling on it is
// identical to calling the Engine's own At/After methods.
func (e *Engine) GlobalLane() *Lane {
	if e.global.eng == nil {
		// Zero-value Engine (no New): wire the embedded lane lazily.
		e.global.eng, e.global.id = e, -1
	}
	return &e.global
}

// NodeLane returns the scheduling lane for node id (dense ids from 0),
// creating it and any lower-numbered lanes on first use. Everything a node's
// components schedule through their lane is declared node-confined: it may
// read and write only that node's state. The parallel executor runs lanes
// concurrently between global events on that promise.
func (e *Engine) NodeLane(id int) *Lane {
	if id < 0 {
		panic(fmt.Sprintf("sim: negative lane id %d", id))
	}
	for len(e.lanes) <= id {
		e.lanes = append(e.lanes, &Lane{eng: e, id: len(e.lanes)})
	}
	return e.lanes[id]
}

// At schedules fn to run at absolute time t on the global lane. Scheduling
// in the past panics: a component asking for time travel is always a bug in
// the caller.
func (e *Engine) At(t units.Tick, fn func()) {
	if !e.parallel {
		e.scheduleSerial(t, fn, nil)
		return
	}
	e.GlobalLane().At(t, fn)
}

// After schedules fn to run d ticks from now on the global lane. Negative d
// panics.
func (e *Engine) After(d units.Tick, fn func()) {
	if d < 0 {
		panic(fmt.Sprintf("sim: negative delay %v", d))
	}
	e.At(e.now+d, fn)
}

// scheduleSerial is the single-heap scheduling path: the whole story in
// serial mode, and the global-lane path at barrier context in parallel mode.
func (e *Engine) scheduleSerial(t units.Tick, fn func(), tm *Timer) {
	if t < e.now {
		panic(fmt.Sprintf("sim: event scheduled at %v, before now %v", t, e.now))
	}
	e.seq++
	ev := e.alloc()
	ev.at, ev.seq, ev.hseq, ev.fn, ev.tm, ev.lane = t, e.seq, e.seq, fn, tm, nil
	if tm != nil {
		tm.ev = ev
	}
	e.events.push(ev)
}

func (e *Engine) alloc() *event {
	if n := len(e.free); n > 0 {
		ev := e.free[n-1]
		e.free[n-1] = nil
		e.free = e.free[:n-1]
		return ev
	}
	return &event{}
}

// Run processes events until every queue is empty and returns the final
// clock value. Events may schedule further events.
func (e *Engine) Run() units.Tick {
	if e.parallel {
		return e.runParallel()
	}
	for len(e.events) > 0 {
		e.step()
	}
	return e.now
}

// RunUntil processes events with time <= t, then advances the clock to t
// (if it is not already past it) and returns. Events scheduled at exactly t
// are processed. RunUntil is a serial-engine facility (component tests step
// their fixtures mid-flight with it); a parallel engine panics.
func (e *Engine) RunUntil(t units.Tick) {
	if e.parallel {
		panic("sim: RunUntil is not supported on a parallel engine")
	}
	for len(e.events) > 0 && e.events[0].at <= t {
		e.step()
	}
	if e.now < t {
		e.now = t
	}
}

func (e *Engine) step() {
	ev := e.events.pop()
	if ev.at < e.now {
		panic("sim: event heap corrupted: time went backwards")
	}
	e.now = ev.at
	e.steps++
	if e.MaxSteps != 0 && e.steps > e.MaxSteps {
		panic(fmt.Sprintf("sim: exceeded MaxSteps=%d at t=%v (runaway event loop?)", e.MaxSteps, e.now))
	}
	fn, tm := ev.fn, ev.tm
	// Recycle before running the callback would be wrong: fn may panic and
	// leave a half-cleared event reachable. Release after it returns; the
	// callback's own scheduling draws from the free list populated by
	// earlier steps.
	if tm != nil {
		tm.ev = nil // off the heap: a Stop from inside fn must not remove
		if !tm.stopped {
			fn()
		}
		ev.tm = nil
		e.tmFree = append(e.tmFree, tm)
	} else {
		fn()
	}
	ev.fn = nil // drop the closure so its captures can be collected
	e.free = append(e.free, ev)
	if e.AfterStep != nil {
		e.AfterStep()
	}
}

// Timer is a cancelable scheduled event. It is used by components that may
// need to retract a pending action, e.g. the PCIe link retracting a DMA
// completion tick when the in-flight transfer set changes, or the Condor
// negotiator retracting a superseded negotiation trigger.
//
// Stop removes the queued event from its owning heap, so a stopped timer
// costs nothing at its former instant — no dead closure survives in the
// queue (Pending drops immediately).
//
// Timers are pooled: once a timer fires or is stopped, the struct returns
// to the engine's free list and the next AtTimer may hand it out again. A
// caller must therefore drop its handle once the timer has fired or been
// stopped — calling Stop on a spent handle may cancel an unrelated,
// recycled timer. Every current caller clears its handle in the callback
// (or stops the timer and nils the handle in the same breath), which is the
// pattern to keep.
//
// Lane confinement extends to timers: a node-lane timer may only be stopped
// from its own lane's context, and a global timer only from barrier or walk
// context — the same scopes that could have scheduled it.
type Timer struct {
	stopped bool
	// ev is the queued event, nil once the event fired or was removed.
	ev *event
	// eng is the owning engine, for free-list access when Stop removes a
	// global (lane-less) event.
	eng *Engine
}

// AtTimer schedules fn at absolute time t on the global lane and returns a
// handle that can stop it. A stopped timer's callback is silently skipped
// when its time arrives.
func (e *Engine) AtTimer(t units.Tick, fn func()) *Timer {
	if !e.parallel {
		tm := e.allocTimer()
		e.scheduleSerial(t, fn, tm)
		return tm
	}
	return e.GlobalLane().AtTimer(t, fn)
}

// AfterTimer schedules fn after delay d and returns a cancelable handle.
func (e *Engine) AfterTimer(d units.Tick, fn func()) *Timer {
	return e.AtTimer(e.now+d, fn)
}

func (e *Engine) allocTimer() *Timer {
	if n := len(e.tmFree); n > 0 {
		tm := e.tmFree[n-1]
		e.tmFree[n-1] = nil
		e.tmFree = e.tmFree[:n-1]
		tm.stopped = false
		tm.ev = nil
		tm.eng = e
		return tm
	}
	return &Timer{eng: e}
}

// Stop cancels the timer and removes its event from the owning heap, so
// neither struct lingers until the instant passes. Stopping a timer whose
// callback is currently executing only marks it stopped (the event is
// already off the heap). Stopping a spent handle is a caller bug (the
// struct may have been recycled — see the Timer doc).
func (t *Timer) Stop() {
	t.stopped = true
	ev := t.ev
	if ev == nil {
		return
	}
	t.ev = nil
	ev.tm = nil
	ev.fn = nil
	if l := ev.lane; l != nil {
		l.heap.remove(ev.idx)
		ev.lane = nil
		l.free = append(l.free, ev)
		l.tmFree = append(l.tmFree, t)
		return
	}
	e := t.eng
	e.events.remove(ev.idx)
	e.free = append(e.free, ev)
	e.tmFree = append(e.tmFree, t)
}

// Stopped reports whether Stop has been called.
func (t *Timer) Stopped() bool { return t.stopped }
