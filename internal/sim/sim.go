// Package sim implements the deterministic discrete-event engine that drives
// the cluster simulation.
//
// Every component in the system — Xeon Phi devices, COSMIC offload queues,
// Condor negotiation cycles, job phase transitions — advances by scheduling
// callbacks on a single Engine. The engine maintains a priority queue of
// events ordered by (time, insertion sequence); the sequence number breaks
// ties so that two events at the same instant always fire in the order they
// were scheduled, which makes simulations bit-for-bit reproducible across
// runs and platforms.
//
// The engine is single-goroutine by design: real HPC cluster middleware is
// concurrent, but a scheduler study needs a causally ordered, replayable
// timeline far more than it needs parallel execution. (The experiment
// harness parallelizes at a coarser grain, running independent simulations
// on separate engines.)
package sim

import (
	"container/heap"
	"fmt"

	"phishare/internal/units"
)

// Event is a scheduled callback.
type event struct {
	at  units.Tick
	seq uint64
	fn  func()
}

// eventHeap orders events by time, then by insertion order.
type eventHeap []*event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int)      { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x interface{}) { *h = append(*h, x.(*event)) }
func (h *eventHeap) Pop() interface{} {
	old := *h
	n := len(old)
	ev := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return ev
}

// Engine is a discrete-event simulation engine.
// The zero value is ready to use, with the clock at 0.
type Engine struct {
	now    units.Tick
	events eventHeap
	seq    uint64
	steps  uint64
	// MaxSteps, if non-zero, bounds the number of events processed by Run;
	// exceeding it panics. It is a guard against accidental event loops
	// (e.g. a scheduler that reschedules itself at the current instant).
	MaxSteps uint64
}

// New returns a fresh engine with the clock at zero.
func New() *Engine { return &Engine{} }

// Now returns the current simulated time.
func (e *Engine) Now() units.Tick { return e.now }

// Steps reports how many events have been processed so far.
func (e *Engine) Steps() uint64 { return e.steps }

// Pending reports how many events are queued.
func (e *Engine) Pending() int { return len(e.events) }

// At schedules fn to run at absolute time t. Scheduling in the past panics:
// a component asking for time travel is always a bug in the caller.
func (e *Engine) At(t units.Tick, fn func()) {
	if t < e.now {
		panic(fmt.Sprintf("sim: event scheduled at %v, before now %v", t, e.now))
	}
	e.seq++
	heap.Push(&e.events, &event{at: t, seq: e.seq, fn: fn})
}

// After schedules fn to run d ticks from now. Negative d panics.
func (e *Engine) After(d units.Tick, fn func()) {
	if d < 0 {
		panic(fmt.Sprintf("sim: negative delay %v", d))
	}
	e.At(e.now+d, fn)
}

// Run processes events until the queue is empty and returns the final clock
// value. Events may schedule further events.
func (e *Engine) Run() units.Tick {
	for len(e.events) > 0 {
		e.step()
	}
	return e.now
}

// RunUntil processes events with time <= t, then advances the clock to t
// (if it is not already past it) and returns. Events scheduled at exactly t
// are processed.
func (e *Engine) RunUntil(t units.Tick) {
	for len(e.events) > 0 && e.events[0].at <= t {
		e.step()
	}
	if e.now < t {
		e.now = t
	}
}

func (e *Engine) step() {
	ev := heap.Pop(&e.events).(*event)
	if ev.at < e.now {
		panic("sim: event heap corrupted: time went backwards")
	}
	e.now = ev.at
	e.steps++
	if e.MaxSteps != 0 && e.steps > e.MaxSteps {
		panic(fmt.Sprintf("sim: exceeded MaxSteps=%d at t=%v (runaway event loop?)", e.MaxSteps, e.now))
	}
	ev.fn()
}

// Timer is a cancelable scheduled event. It is used by components that may
// need to retract a pending action, e.g. COSMIC retracting the completion of
// an offload whose job was killed by the memory container.
type Timer struct {
	stopped bool
}

// AtTimer schedules fn at absolute time t and returns a handle that can stop
// it. A stopped timer's callback is silently skipped when its time arrives.
func (e *Engine) AtTimer(t units.Tick, fn func()) *Timer {
	tm := &Timer{}
	e.At(t, func() {
		if !tm.stopped {
			fn()
		}
	})
	return tm
}

// AfterTimer schedules fn after delay d and returns a cancelable handle.
func (e *Engine) AfterTimer(d units.Tick, fn func()) *Timer {
	return e.AtTimer(e.now+d, fn)
}

// Stop cancels the timer. Stopping an already-fired or already-stopped timer
// is a no-op.
func (t *Timer) Stop() { t.stopped = true }

// Stopped reports whether Stop has been called.
func (t *Timer) Stopped() bool { return t.stopped }
