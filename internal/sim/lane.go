package sim

import (
	"fmt"

	"phishare/internal/units"
)

// Lane is a scheduling handle that declares the node scope of every event
// scheduled through it. Node components (devices, links, COSMIC managers,
// the starter-side runner) hold their node's lane; cross-node machinery
// (the negotiator, fault injection, observability sampling) schedules on
// the global lane via the Engine's own methods.
//
// In serial mode a Lane is a thin veneer over the engine's single heap and
// behaves exactly like the classic engine. In parallel mode (see
// parallel.go) each node lane owns a private heap, clock and free lists, and
// epochs of node-confined events execute concurrently between global
// events. The contract a component accepts by scheduling on a node lane:
// the callback reads and writes only that node's state, and anything that
// must escape the node — completing a job back into the Condor pool — goes
// through Global.
type Lane struct {
	eng *Engine
	id  int // -1 for the global lane

	// Parallel-mode state; untouched in serial mode. Each lane's heap,
	// clock, executing-event cursor and free lists are owned by whichever
	// worker goroutine runs the lane during an epoch, and by the
	// single-threaded coordinator otherwise, so none of it needs locks: the
	// epoch start/join is the only synchronization.
	heap    eventHeap
	now     units.Tick
	hseq    uint64
	cur     *event   // event currently executing on this lane (epoch context)
	log     []*event // events executed this epoch, in execution order
	logPos  int
	free    []*event
	tmFree  []*Timer
	running bool
}

// Engine returns the engine this lane schedules on.
func (l *Lane) Engine() *Engine { return l.eng }

// ID returns the lane's node id, or -1 for the global lane.
func (l *Lane) ID() int { return l.id }

// Now returns the current simulated time as seen by this lane: the lane's
// own clock while it executes an epoch slice, the engine clock otherwise.
// The two agree at every globally consistent point.
func (l *Lane) Now() units.Tick {
	if l.running {
		return l.now
	}
	return l.eng.now
}

// At schedules fn at absolute time t on this lane. Scheduling in the past
// panics.
func (l *Lane) At(t units.Tick, fn func()) { l.schedule(t, fn, nil) }

// After schedules fn d ticks from now on this lane. Negative d panics.
func (l *Lane) After(d units.Tick, fn func()) {
	if d < 0 {
		panic(fmt.Sprintf("sim: negative delay %v", d))
	}
	l.schedule(l.Now()+d, fn, nil)
}

// AtTimer schedules fn at absolute time t on this lane and returns a
// cancelable handle (see Timer for the pooling contract).
func (l *Lane) AtTimer(t units.Tick, fn func()) *Timer {
	tm := l.allocTimer()
	l.schedule(t, fn, tm)
	return tm
}

// AfterTimer schedules fn after delay d on this lane and returns a
// cancelable handle.
func (l *Lane) AfterTimer(d units.Tick, fn func()) *Timer {
	if d < 0 {
		panic(fmt.Sprintf("sim: negative delay %v", d))
	}
	return l.AtTimer(l.Now()+d, fn)
}

// Global runs fn in the cross-node (barrier) context. From serial code and
// from barrier context it runs fn immediately — the classic synchronous
// behavior. From inside a parallel epoch it defers fn into the executing
// event's action log; the canonical walk replays it at this event's exact
// serial position, with the engine clock at the event's time, so everything
// fn touches (pool accounting, record streams, negotiation requests)
// observes the same state and order a serial run would produce.
//
// A deferred fn must not schedule node-lane events, and any global events it
// schedules must lie at least the engine's lookahead past the deferral
// point; both are enforced at replay time.
func (l *Lane) Global(fn func()) {
	e := l.eng
	if e.parallel && e.ctx == ctxEpoch && l.id >= 0 {
		cur := l.cur
		if cur == nil {
			panic("sim: Global called in an epoch outside the lane's executor")
		}
		cur.acts = append(cur.acts, action{global: fn})
		return
	}
	fn()
}

// EpochLocal reports whether the caller is executing on this lane inside a
// parallel epoch window — the one context where shared state is off-limits
// and effects that must reach a shared consumer have to be buffered
// lane-locally and drained at the canonical walk (see DeferFlush). It is
// false in serial mode, in barrier context, during fused single-lane windows
// and during the walk, all of which already run in canonical order on one
// thread. Only code running on the lane's own executor may call it.
func (l *Lane) EpochLocal() bool {
	e := l.eng
	return e.parallel && e.ctx == ctxEpoch && l.running
}

// DeferFlush records a lane-buffer drain point in the executing event's
// action log. The canonical walk calls the engine's registered lane-flush
// hook (Engine.SetLaneFlush) once per recorded point, at this event's exact
// serial position and interleaved with Global deferrals in emission order.
// A collector that appends one record to a lane-local buffer per DeferFlush
// call therefore sees its records surface at the hook in exactly the order a
// serial run would have produced them. Must only be called when EpochLocal
// is true.
func (l *Lane) DeferFlush() {
	cur := l.cur
	if cur == nil {
		panic("sim: DeferFlush called outside the lane's epoch executor")
	}
	if l.eng.laneFlush == nil {
		panic("sim: DeferFlush with no flush hook registered (Engine.SetLaneFlush)")
	}
	cur.acts = append(cur.acts, action{flush: true})
}

func (l *Lane) schedule(t units.Tick, fn func(), tm *Timer) {
	e := l.eng
	if !e.parallel {
		e.scheduleSerial(t, fn, tm)
		return
	}
	if l.id < 0 {
		// Global lane, parallel mode.
		switch e.ctx {
		case ctxEpoch:
			panic("sim: global event scheduled from a node lane during an epoch; defer it with Lane.Global")
		case ctxWalk:
			if t < e.walkBound {
				panic(fmt.Sprintf(
					"sim: lookahead violation: deferred closure scheduled a global event at %v inside the executed window (bound %v)",
					t, e.walkBound))
			}
		}
		e.scheduleSerial(t, fn, tm)
		return
	}
	switch e.ctx {
	case ctxEpoch:
		cur := l.cur
		if cur == nil || !l.running {
			panic("sim: lane event scheduled in an epoch outside the lane's executor")
		}
		if t < l.now {
			panic(fmt.Sprintf("sim: event scheduled at %v, before lane now %v", t, l.now))
		}
		ev := l.alloc()
		ev.at, ev.seq, ev.fn, ev.tm, ev.lane = t, 0, fn, tm, l
		if tm != nil {
			tm.ev = ev
		}
		l.hseq++
		ev.hseq = l.hseq
		l.heap.push(ev)
		cur.acts = append(cur.acts, action{child: ev})
	case ctxWalk:
		panic("sim: deferred global closure scheduled a node-lane event; lane work must be scheduled from the node or from barrier events")
	default: // ctxSerial: barrier context, single-threaded
		if t < e.now {
			panic(fmt.Sprintf("sim: event scheduled at %v, before now %v", t, e.now))
		}
		e.seq++
		ev := l.alloc()
		ev.at, ev.seq, ev.fn, ev.tm, ev.lane = t, e.seq, fn, tm, l
		if tm != nil {
			tm.ev = ev
		}
		l.hseq++
		ev.hseq = l.hseq
		l.heap.push(ev)
	}
}

func (l *Lane) alloc() *event {
	if n := len(l.free); n > 0 {
		ev := l.free[n-1]
		l.free[n-1] = nil
		l.free = l.free[:n-1]
		return ev
	}
	return &event{}
}

func (l *Lane) allocTimer() *Timer {
	e := l.eng
	if e.parallel && e.ctx == ctxEpoch && l.id >= 0 {
		if n := len(l.tmFree); n > 0 {
			tm := l.tmFree[n-1]
			l.tmFree[n-1] = nil
			l.tmFree = l.tmFree[:n-1]
			tm.stopped = false
			tm.ev = nil
			tm.eng = e
			return tm
		}
		return &Timer{eng: e}
	}
	return e.allocTimer()
}
