package workload

import (
	"testing"

	"phishare/internal/job"
	"phishare/internal/units"
)

func diurnalCfg(seed int64, n int) DiurnalConfig {
	return DiurnalConfig{N: n, Seed: seed, BurstCount: 3, Tenants: 10}
}

func TestDiurnalDeterministic(t *testing.T) {
	a := Collect(NewDiurnal(diurnalCfg(11, 2000)))
	b := Collect(NewDiurnal(diurnalCfg(11, 2000)))
	if len(a) != len(b) {
		t.Fatalf("lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i].At != b[i].At || a[i].Tenant != b[i].Tenant ||
			a[i].Job.Mem != b[i].Job.Mem || a[i].Job.Threads != b[i].Job.Threads ||
			a[i].Job.SequentialTime() != b[i].Job.SequentialTime() {
			t.Fatalf("streams diverge at arrival %d: %+v vs %+v", i, a[i], b[i])
		}
	}
	c := Collect(NewDiurnal(diurnalCfg(12, 2000)))
	same := 0
	for i := range a {
		if a[i].At == c[i].At {
			same++
		}
	}
	if same == len(a) {
		t.Error("different seeds produced identical arrival times")
	}
}

func TestDiurnalStreamShape(t *testing.T) {
	src := NewDiurnal(diurnalCfg(21, 5000))
	if src.Len() != 5000 {
		t.Fatalf("Len = %d, want 5000", src.Len())
	}
	arrivals := Collect(src)
	if len(arrivals) != 5000 {
		t.Fatalf("yielded %d arrivals, want exactly N", len(arrivals))
	}
	var prev units.Tick
	for i, a := range arrivals {
		if a.At < prev {
			t.Fatalf("arrival %d travels back in time: %v after %v", i, a.At, prev)
		}
		prev = a.At
		if err := a.Job.Validate(); err != nil {
			t.Fatalf("arrival %d invalid: %v", i, err)
		}
		if a.Job.ID != i {
			t.Fatalf("arrival %d has job ID %d", i, a.Job.ID)
		}
		if int(a.Job.Mem)%128 != 0 {
			t.Fatalf("arrival %d memory %v not quantized to 128 MB", i, a.Job.Mem)
		}
		if a.Job.Threads > 224 {
			t.Fatalf("arrival %d wants %v threads; diurnal jobs must fit a 3120A (224)",
				i, a.Job.Threads)
		}
		if a.Tenant == "" {
			t.Fatalf("arrival %d has no tenant in a 10-tenant config", i)
		}
	}
}

func TestDiurnalRateShape(t *testing.T) {
	// With the trough at t=0, burst-free midday (t in [Day/4, 3Day/4]) must
	// collect well over half the arrivals — the PeakFactor=4 sinusoid puts
	// ~68% of its mass there.
	arrivals := Collect(NewDiurnal(DiurnalConfig{N: 20000, Seed: 31}))
	day := 24 * units.Hour
	mid := 0
	for _, a := range arrivals {
		if a.At >= day/4 && a.At < 3*day/4 {
			mid++
		}
	}
	if frac := float64(mid) / float64(len(arrivals)); frac < 0.6 {
		t.Errorf("midday half-day holds %.2f of arrivals, want > 0.6 (diurnal curve missing?)", frac)
	}
}

func TestDiurnalTenantSkew(t *testing.T) {
	arrivals := Collect(NewDiurnal(diurnalCfg(41, 10000)))
	counts := map[string]int{}
	for _, a := range arrivals {
		counts[a.Tenant]++
	}
	if counts["tenant0000"] <= counts["tenant0009"] {
		t.Errorf("Zipf skew inverted: tenant0000=%d vs tenant0009=%d",
			counts["tenant0000"], counts["tenant0009"])
	}
	if counts["tenant0000"] < len(arrivals)/10 {
		t.Errorf("heaviest tenant holds %d of %d arrivals; Zipf-1.1 head should exceed uniform share",
			counts["tenant0000"], len(arrivals))
	}
}

func TestFromSliceAndCollect(t *testing.T) {
	jobs := Generate(Config{Dist: Uniform, N: 50, Seed: 51})
	src := FromSlice(jobs)
	if src.Len() != 50 {
		t.Fatalf("Len = %d", src.Len())
	}
	arrivals := Collect(src)
	for i, a := range arrivals {
		if a.Job != jobs[i] || a.At != 0 || a.Tenant != "" {
			t.Fatalf("arrival %d = %+v, want job %d at t=0, anonymous", i, a, i)
		}
	}
	if a, ok := src.Next(); ok {
		t.Fatalf("exhausted source yielded %+v", a)
	}

	round := Collect(FromArrivals(arrivals))
	for i := range round {
		if round[i] != arrivals[i] {
			t.Fatalf("FromArrivals/Collect roundtrip diverges at %d", i)
		}
	}
}

func TestFromArrivalsRejectsTimeTravel(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("FromArrivals accepted an out-of-order schedule")
		}
	}()
	j := &job.Job{}
	FromArrivals([]Arrival{{Job: j, At: 10}, {Job: j, At: 5}})
}

func TestHeterogeneousPool(t *testing.T) {
	a := HeterogeneousPool(61, 500, nil)
	b := HeterogeneousPool(61, 500, nil)
	classes := DefaultDeviceClasses()
	seen := map[int]int{}
	for n := range a {
		if a[n] != b[n] {
			t.Fatalf("pool draw not deterministic at node %d", n)
		}
		found := -1
		for k, c := range classes {
			if a[n] == c.Device {
				found = k
			}
		}
		if found < 0 {
			t.Fatalf("node %d device %+v matches no class", n, a[n])
		}
		seen[found]++
	}
	if len(seen) != len(classes) {
		t.Errorf("500-node pool uses %d of %d classes", len(seen), len(classes))
	}
	// The mainstream part (weight 0.5) must dominate the small one (0.2).
	if seen[0] <= seen[2] {
		t.Errorf("class mix ignores weights: %v", seen)
	}
}
