// Lazy arrival sources: the streaming workload layer.
//
// The paper's evaluation submits a fixed job slice at t=0, which is fine for
// Table II but caps the simulator at workloads that fit in memory twice over
// (the slice itself plus every pre-scheduled submit event). A Source instead
// yields arrivals one at a time, in non-decreasing time order, so the
// experiment driver can pull the next arrival from a single self-rearming
// generator timer and the resident footprint stays O(active jobs) no matter
// how many jobs the stream carries.
//
// Two families ship:
//
//   - FromSlice / FromArrivals wrap pre-materialized sets (the paper's
//     static batches, replayed traces) in the Source interface.
//   - Diurnal synthesizes planet-scale traffic: a nonhomogeneous Poisson
//     arrival process whose rate follows a day-night curve, with burst and
//     tenant-skew knobs and per-arrival synthetic job bodies drawn from the
//     Fig. 7 resource distributions. Generation is strictly incremental —
//     O(1) state per arrival — and deterministic in the seed.
package workload

import (
	"fmt"
	"math"

	"phishare/internal/job"
	"phishare/internal/phi"
	"phishare/internal/rng"
	"phishare/internal/units"
)

// Arrival is one lazily generated job arrival.
type Arrival struct {
	// Job is the arriving job. The source hands over ownership: once
	// returned, the source keeps no reference, so a streaming consumer that
	// drops the job after completion has dropped the only copy.
	Job *job.Job
	// Tenant is the submitting user for fair-share accounting; empty means
	// the anonymous single-user default.
	Tenant string
	// At is the absolute arrival (submission) time.
	At units.Tick
}

// Source is a lazy, time-ordered arrival stream. Next returns the next
// arrival and true, or a zero Arrival and false once the stream is
// exhausted. Arrival times are non-decreasing. Sources are single-pass;
// build a fresh one (same config, same seed) to replay a stream.
type Source interface {
	Next() (Arrival, bool)
	// Len is the total number of arrivals the source will yield over its
	// lifetime (already-consumed ones included). Every shipped source knows
	// its job budget up front; the driver uses Len to size runaway guards.
	Len() int
}

// sliceSource adapts a pre-materialized arrival slice.
type sliceSource struct {
	arrivals []Arrival
	next     int
}

func (s *sliceSource) Next() (Arrival, bool) {
	if s.next >= len(s.arrivals) {
		return Arrival{}, false
	}
	a := s.arrivals[s.next]
	s.arrivals[s.next] = Arrival{} // drop the reference: streaming consumers own the job now
	s.next++
	return a, true
}

func (s *sliceSource) Len() int { return len(s.arrivals) }

// FromSlice wraps a static job set as a Source with every job arriving at
// t=0 under the anonymous tenant — the paper's batch submission expressed
// as a stream.
func FromSlice(jobs []*job.Job) Source {
	arrivals := make([]Arrival, len(jobs))
	for i, j := range jobs {
		arrivals[i] = Arrival{Job: j}
	}
	return &sliceSource{arrivals: arrivals}
}

// FromArrivals wraps an explicit arrival schedule (e.g. an ingested trace)
// as a Source. The slice must already be sorted by At; it panics otherwise,
// because a time-travelling source would corrupt the generator timer.
func FromArrivals(arrivals []Arrival) Source {
	for i := 1; i < len(arrivals); i++ {
		if arrivals[i].At < arrivals[i-1].At {
			panic(fmt.Sprintf("workload: arrivals out of order at %d: %v < %v",
				i, arrivals[i].At, arrivals[i-1].At))
		}
	}
	cp := make([]Arrival, len(arrivals))
	copy(cp, arrivals)
	return &sliceSource{arrivals: cp}
}

// Collect drains a source into a slice, for consumers that want the whole
// set resident (small cells, tests, CSV inspection). The inverse of
// FromArrivals.
func Collect(s Source) []Arrival {
	out := make([]Arrival, 0, s.Len())
	for {
		a, ok := s.Next()
		if !ok {
			return out
		}
		out = append(out, a)
	}
}

// DiurnalConfig parameterizes the synthetic planet-scale arrival generator.
// The zero value (plus N and Seed) is a sensible single-tenant diurnal day.
type DiurnalConfig struct {
	// N is the total number of arrivals the source yields.
	N int
	// Seed makes the stream reproducible: equal configs yield bit-equal
	// streams.
	Seed int64

	// Day is the diurnal period (default 24 h of simulated time).
	Day units.Tick
	// Horizon is the span the N arrivals are spread over (default one Day).
	// The mean rate is N/Horizon; the actual process is Poisson, so the
	// last arrival lands near — not exactly at — the horizon.
	Horizon units.Tick
	// PeakFactor is the peak-to-trough ratio of the day-night rate curve
	// (default 4: midday arrives 4× as fast as midnight; 1 flattens the
	// curve to homogeneous Poisson). The curve is sinusoidal with its
	// trough at t=0.
	PeakFactor float64

	// BurstCount is the expected number of traffic bursts per Day (default
	// 0: no bursts). Burst windows open as a Poisson process.
	BurstCount float64
	// BurstFactor multiplies the arrival rate inside a burst window
	// (default 8 when BurstCount > 0).
	BurstFactor float64
	// BurstLen is each burst window's duration (default 2 minutes).
	BurstLen units.Tick

	// Tenants is the number of distinct submitting users (default 1: the
	// anonymous tenant, matching the paper's single-user experiments).
	Tenants int
	// TenantSkew is the Zipf exponent of the tenant popularity distribution
	// (default 1.1 when Tenants > 1): tenant k submits with weight
	// (k+1)^-skew, so a handful of heavy tenants dominate — the population
	// shape that makes fair-share matter. 0 with Tenants > 1 means uniform.
	TenantSkew float64

	// Jobs shapes the synthetic job bodies (resource distribution and
	// ranges); its N and Seed fields are ignored. The default MaxThreads is
	// 224 rather than the batch generator's 240, so every job fits the
	// smallest device generation of a heterogeneous pool (57 cores × 4).
	Jobs Config
	// MemQuantum rounds each job's declared memory up to a multiple
	// (default 128 MB). Coarse requests keep the negotiator's autocluster
	// signature space small — a million distinct byte counts would churn
	// the 4096-entry signature table every cycle; ~15 memory levels × ~55
	// thread levels stay comfortably inside it.
	MemQuantum units.MB
}

func (c DiurnalConfig) withDefaults() DiurnalConfig {
	if c.Day == 0 {
		c.Day = 24 * units.Hour
	}
	if c.Horizon == 0 {
		c.Horizon = c.Day
	}
	if c.PeakFactor == 0 {
		c.PeakFactor = 4
	}
	if c.PeakFactor < 1 {
		panic(fmt.Sprintf("workload: PeakFactor %g < 1", c.PeakFactor))
	}
	if c.BurstCount > 0 {
		if c.BurstFactor == 0 {
			c.BurstFactor = 8
		}
		if c.BurstLen == 0 {
			c.BurstLen = 2 * units.Minute
		}
		if c.BurstFactor < 1 {
			panic(fmt.Sprintf("workload: BurstFactor %g < 1", c.BurstFactor))
		}
	}
	if c.Tenants == 0 {
		c.Tenants = 1
	}
	if c.Tenants > 1 && c.TenantSkew == 0 {
		c.TenantSkew = 1.1
	}
	if c.Jobs.MaxThreads == 0 {
		c.Jobs.MaxThreads = 224
	}
	c.Jobs = c.Jobs.withDefaults()
	if c.MemQuantum == 0 {
		c.MemQuantum = 128
	}
	return c
}

// Diurnal is the synthetic planet-scale arrival source. Construct with
// NewDiurnal; resident state is O(Tenants), independent of N.
type Diurnal struct {
	cfg DiurnalConfig

	// Independent deterministic streams, so e.g. adding a burst draw does
	// not perturb job bodies.
	arrivalR *rng.Source // thinning candidate gaps and accept draws
	burstR   *rng.Source // burst window schedule
	tenantR  *rng.Source // tenant picks
	jobR     *rng.Source // job body synthesis

	yielded int
	clock   float64 // candidate arrival clock, in ticks
	rateMax float64 // thinning envelope: arrivals per tick, everything on

	// Diurnal curve: rate(t) = base · (1 + amp·sin(2πt/Day − π/2)).
	base, amp float64

	// Burst window state machine, advanced monotonically with the clock.
	burstGap  float64 // mean gap between window opens, in ticks
	nextBurst float64 // next window open (math.Inf(1) when bursts are off)
	burstEnd  float64 // current window close (0 when no window is open)

	// cumWeight is the tenant popularity CDF (len Tenants); names are the
	// interned tenant strings, built once so every arrival of a tenant
	// shares one string.
	cumWeight []float64
	names     []string
}

// NewDiurnal builds the generator. It panics on a non-positive N — an empty
// stream is almost always a mis-filled config.
func NewDiurnal(cfg DiurnalConfig) *Diurnal {
	cfg = cfg.withDefaults()
	if cfg.N <= 0 {
		panic(fmt.Sprintf("workload: DiurnalConfig.N = %d", cfg.N))
	}
	root := rng.New(cfg.Seed).Fork("diurnal")
	d := &Diurnal{
		cfg:      cfg,
		arrivalR: root.Fork("arrivals"),
		burstR:   root.Fork("bursts"),
		tenantR:  root.Fork("tenants"),
		jobR:     root.Fork("jobs-" + cfg.Jobs.Dist.String()),
	}
	// Mean rate N/Horizon; the sinusoid integrates to zero over whole days,
	// so base is the mean. PeakFactor p maps to amplitude (p−1)/(p+1):
	// peak base·(1+amp) over trough base·(1−amp) equals p.
	d.base = float64(cfg.N) / float64(cfg.Horizon)
	d.amp = (cfg.PeakFactor - 1) / (cfg.PeakFactor + 1)
	d.rateMax = d.base * (1 + d.amp)
	d.nextBurst = math.Inf(1)
	if cfg.BurstCount > 0 {
		d.rateMax *= cfg.BurstFactor
		d.burstGap = float64(cfg.Day) / cfg.BurstCount
		d.nextBurst = d.burstR.Exp(d.burstGap)
	}
	d.names = make([]string, cfg.Tenants)
	d.cumWeight = make([]float64, cfg.Tenants)
	sum := 0.0
	for k := 0; k < cfg.Tenants; k++ {
		if cfg.Tenants > 1 {
			d.names[k] = fmt.Sprintf("tenant%04d", k)
		}
		w := 1.0
		if cfg.TenantSkew > 0 {
			w = math.Pow(float64(k+1), -cfg.TenantSkew)
		}
		sum += w
		d.cumWeight[k] = sum
	}
	return d
}

// Len returns the configured arrival count N.
func (d *Diurnal) Len() int { return d.cfg.N }

// rate evaluates the arrival intensity at candidate time t, advancing the
// burst window machine. t only moves forward (the thinning clock is
// monotone), so the machine never rewinds.
func (d *Diurnal) rate(t float64) float64 {
	for t >= d.nextBurst {
		d.burstEnd = d.nextBurst + float64(d.cfg.BurstLen)
		d.nextBurst += d.burstR.Exp(d.burstGap)
	}
	r := d.base * (1 + d.amp*math.Sin(2*math.Pi*t/float64(d.cfg.Day)-math.Pi/2))
	if t < d.burstEnd {
		r *= d.cfg.BurstFactor
	}
	return r
}

// Next yields the next arrival by Lewis–Shedler thinning: candidate points
// arrive at the constant envelope rate and survive with probability
// rate(t)/rateMax, which realizes the nonhomogeneous process exactly.
func (d *Diurnal) Next() (Arrival, bool) {
	if d.yielded >= d.cfg.N {
		return Arrival{}, false
	}
	for {
		d.clock += d.arrivalR.Exp(1 / d.rateMax)
		if d.arrivalR.Float64()*d.rateMax >= d.rate(d.clock) {
			continue // thinned: candidate rejected
		}
		id := d.yielded
		d.yielded++
		tenant := 0
		if d.cfg.Tenants > 1 {
			tenant = pickCum(d.cumWeight, d.tenantR.Float64())
		}
		j := synthesize(id, d.cfg.Jobs, d.jobR)
		j.Name = fmt.Sprintf("diurnal-%s#%d", d.cfg.Jobs.Dist, id)
		// Coarsen the declared memory request (see MemQuantum). Rounding
		// up keeps ActualPeakMem ≤ Mem and every admission guarantee.
		if q := d.cfg.MemQuantum; q > 1 {
			j.Mem = (j.Mem + q - 1) / q * q
		}
		return Arrival{Job: j, Tenant: d.names[tenant], At: units.Tick(d.clock)}, true
	}
}

// pickCum binary-searches a cumulative weight table: the smallest index k
// with u·total < cum[k].
func pickCum(cum []float64, u float64) int {
	x := u * cum[len(cum)-1]
	lo, hi := 0, len(cum)-1
	for lo < hi {
		mid := (lo + hi) / 2
		if x < cum[mid] {
			hi = mid
		} else {
			lo = mid + 1
		}
	}
	return lo
}

// DeviceClass is one device generation inside a heterogeneous pool.
type DeviceClass struct {
	// Name tags the generation (informational).
	Name string
	// Device is the hardware model.
	Device phi.Config
	// Weight is the class's share of the node population.
	Weight float64
}

// DefaultDeviceClasses is a three-generation Xeon Phi mix modeled on the
// x100 product line: the paper's 5110P plus the larger 7120P and the
// smaller 3120A. Weights skew toward the mainstream part.
func DefaultDeviceClasses() []DeviceClass {
	return []DeviceClass{
		{Name: "5110P", Weight: 0.5,
			Device: phi.Config{Cores: 60, ThreadsPerCore: 4, Memory: units.GB(8), SpinContention: phi.DefaultSpinContention}},
		{Name: "7120P", Weight: 0.3,
			Device: phi.Config{Cores: 61, ThreadsPerCore: 4, Memory: units.GB(16), SpinContention: phi.DefaultSpinContention}},
		{Name: "3120A", Weight: 0.2,
			Device: phi.Config{Cores: 57, ThreadsPerCore: 4, Memory: units.GB(6), SpinContention: phi.DefaultSpinContention}},
	}
}

// HeterogeneousPool draws a per-node device assignment from the class mix —
// the input for cluster.Config.NodeDevices. Deterministic in the seed;
// every node's devices share its class (mixed-generation nodes were not a
// thing micinfo would have enjoyed reporting).
func HeterogeneousPool(seed int64, nodes int, classes []DeviceClass) []phi.Config {
	if len(classes) == 0 {
		classes = DefaultDeviceClasses()
	}
	weights := make([]float64, len(classes))
	for i, c := range classes {
		weights[i] = c.Weight
	}
	r := rng.New(seed).Fork("hetero-pool")
	out := make([]phi.Config, nodes)
	for n := range out {
		out[n] = classes[r.Pick(weights)].Device
	}
	return out
}
