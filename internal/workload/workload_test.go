package workload

import (
	"testing"

	"phishare/internal/job"
	"phishare/internal/rng"
	"phishare/internal/units"
)

func TestDistributionStrings(t *testing.T) {
	want := []string{"uniform", "normal", "low-skew", "high-skew"}
	for i, d := range Distributions() {
		if d.String() != want[i] {
			t.Errorf("dist %d = %q, want %q", i, d, want[i])
		}
	}
}

func TestParseDistribution(t *testing.T) {
	for _, d := range Distributions() {
		got, err := ParseDistribution(d.String())
		if err != nil || got != d {
			t.Errorf("ParseDistribution(%q) = %v, %v", d.String(), got, err)
		}
	}
	if _, err := ParseDistribution("bogus"); err == nil {
		t.Error("ParseDistribution accepted bogus name")
	}
}

func TestGenerateCountAndValidity(t *testing.T) {
	for _, d := range Distributions() {
		jobs := Generate(Config{Dist: d, N: 400, Seed: 42})
		if len(jobs) != 400 {
			t.Fatalf("%v: generated %d jobs", d, len(jobs))
		}
		if err := job.ValidateAll(jobs); err != nil {
			t.Fatalf("%v: invalid job set: %v", d, err)
		}
	}
}

func TestGenerateDeterministic(t *testing.T) {
	a := Generate(Config{Dist: Normal, N: 100, Seed: 7})
	b := Generate(Config{Dist: Normal, N: 100, Seed: 7})
	for i := range a {
		if a[i].Mem != b[i].Mem || a[i].Threads != b[i].Threads ||
			a[i].SequentialTime() != b[i].SequentialTime() {
			t.Fatalf("generation not deterministic at job %d", i)
		}
	}
}

func TestGenerateSeedsDiffer(t *testing.T) {
	a := Generate(Config{Dist: Normal, N: 100, Seed: 1})
	b := Generate(Config{Dist: Normal, N: 100, Seed: 2})
	same := 0
	for i := range a {
		if a[i].Mem == b[i].Mem {
			same++
		}
	}
	if same == len(a) {
		t.Error("different seeds produced identical job sets")
	}
}

func TestResourceBounds(t *testing.T) {
	for _, d := range Distributions() {
		jobs := Generate(Config{Dist: d, N: 1000, Seed: 3})
		for _, j := range jobs {
			if j.Mem < 256 || j.Mem > units.GB(2) {
				t.Fatalf("%v: job %s memory %v out of bounds", d, j.Name, j.Mem)
			}
			if j.Threads < 24 || j.Threads > 240 {
				t.Fatalf("%v: job %s threads %v out of bounds", d, j.Name, j.Threads)
			}
			if int(j.Threads)%4 != 0 {
				t.Fatalf("%v: job %s threads %v not core-aligned", d, j.Name, j.Threads)
			}
			if j.Mem > units.GB(8) {
				t.Fatalf("job %s does not fit a single device", j.Name)
			}
		}
	}
}

func TestMemoryThreadCorrelation(t *testing.T) {
	// The paper assumes low-memory jobs also have low thread counts: the
	// two must be strongly positively correlated.
	jobs := Generate(Config{Dist: Uniform, N: 2000, Seed: 4})
	var mx, my float64
	for _, j := range jobs {
		mx += float64(j.Mem)
		my += float64(j.Threads)
	}
	mx /= float64(len(jobs))
	my /= float64(len(jobs))
	var sxy, sxx, syy float64
	for _, j := range jobs {
		dx, dy := float64(j.Mem)-mx, float64(j.Threads)-my
		sxy += dx * dy
		sxx += dx * dx
		syy += dy * dy
	}
	r := sxy / (sqrt(sxx) * sqrt(syy))
	if r < 0.95 {
		t.Errorf("memory/thread correlation %.3f, want > 0.95", r)
	}
}

func sqrt(x float64) float64 {
	// Newton's method avoids importing math for a single call in tests.
	if x <= 0 {
		return 0
	}
	z := x
	for i := 0; i < 64; i++ {
		z = (z + x/z) / 2
	}
	return z
}

func TestSkewDirections(t *testing.T) {
	// Fig. 7's defining property: mean resource level ordering
	// low-skew < normal < high-skew, with uniform near 0.5.
	cfg := Config{N: 4000, Seed: 5}
	mean := func(d Distribution) float64 {
		c := cfg
		c.Dist = d
		jobs := Generate(c)
		h := BuildHistogram(d, jobs, c, 20)
		return h.MeanLevel()
	}
	u, n, lo, hi := mean(Uniform), mean(Normal), mean(LowSkew), mean(HighSkew)
	if !(lo < n && n < hi) {
		t.Errorf("skew ordering violated: low=%.3f normal=%.3f high=%.3f", lo, n, hi)
	}
	if u < 0.45 || u > 0.55 {
		t.Errorf("uniform mean level %.3f, want ~0.5", u)
	}
	if hi-lo < 0.15 {
		t.Errorf("skew separation %.3f too small (low=%.3f high=%.3f)", hi-lo, lo, hi)
	}
}

func TestNormalConcentratesMidRange(t *testing.T) {
	cfg := Config{Dist: Normal, N: 4000, Seed: 6}
	jobs := Generate(cfg)
	h := BuildHistogram(Normal, jobs, cfg, 10)
	midMass := 0
	for i := 3; i < 7; i++ {
		midMass += h.Bins[i]
	}
	if frac := float64(midMass) / float64(h.Total); frac < 0.6 {
		t.Errorf("normal distribution mid-range mass %.2f, want > 0.6", frac)
	}
}

func TestUniformIsFlat(t *testing.T) {
	cfg := Config{Dist: Uniform, N: 10000, Seed: 7}
	jobs := Generate(cfg)
	h := BuildHistogram(Uniform, jobs, cfg, 10)
	for i, c := range h.Bins {
		frac := float64(c) / float64(h.Total)
		if frac < 0.05 || frac > 0.15 {
			t.Errorf("uniform bin %d frequency %.3f far from 0.1", i, frac)
		}
	}
}

func TestHistogramTotal(t *testing.T) {
	cfg := Config{Dist: Uniform, N: 123, Seed: 8}
	jobs := Generate(cfg)
	h := BuildHistogram(Uniform, jobs, cfg, 5)
	if h.Total != 123 {
		t.Errorf("histogram total %d, want 123", h.Total)
	}
	sum := 0
	for _, c := range h.Bins {
		sum += c
	}
	if sum != 123 {
		t.Errorf("bin sum %d, want 123", sum)
	}
}

func TestHistogramEmptyJobs(t *testing.T) {
	h := BuildHistogram(Uniform, nil, Config{}, 5)
	if h.MeanLevel() != 0 {
		t.Errorf("empty histogram mean = %v", h.MeanLevel())
	}
}

func TestLevelBounds(t *testing.T) {
	r := rng.New(9)
	for _, d := range Distributions() {
		for i := 0; i < 2000; i++ {
			x := d.Level(r)
			if x < 0 || x > 1 {
				t.Fatalf("%v level %v out of [0,1]", d, x)
			}
		}
	}
}
