// Package workload builds the synthetic job sets used in the paper's
// sensitivity study (§V-B, Fig. 7).
//
// Each synthetic job has a single resource level x ∈ [0, 1] that drives both
// its memory and thread requirements — the paper assumes "jobs with low Xeon
// Phi memory requirements also have low thread requirements, and vice
// versa", which is why Fig. 7's horizontal axis represents both resources at
// once. Four distributions over x are defined: uniform, normal, low-resource
// skew and high-resource skew (mean shifted one standard deviation below or
// above the normal mean).
package workload

import (
	"fmt"

	"phishare/internal/job"
	"phishare/internal/rng"
	"phishare/internal/units"
)

// Distribution selects one of the Fig. 7 resource distributions.
type Distribution int

const (
	// Uniform spreads jobs equally across resource levels.
	Uniform Distribution = iota
	// Normal concentrates jobs in the mid-resource range.
	Normal
	// LowSkew shifts the normal mean one standard deviation toward low
	// resource requirements.
	LowSkew
	// HighSkew shifts the normal mean one standard deviation toward high
	// resource requirements.
	HighSkew
)

// Distributions lists all four in presentation order (Fig. 7 left to right).
func Distributions() []Distribution {
	return []Distribution{Uniform, Normal, LowSkew, HighSkew}
}

func (d Distribution) String() string {
	switch d {
	case Uniform:
		return "uniform"
	case Normal:
		return "normal"
	case LowSkew:
		return "low-skew"
	case HighSkew:
		return "high-skew"
	}
	return fmt.Sprintf("Distribution(%d)", int(d))
}

// ParseDistribution parses a distribution name as printed by String.
func ParseDistribution(s string) (Distribution, error) {
	for _, d := range Distributions() {
		if d.String() == s {
			return d, nil
		}
	}
	return 0, fmt.Errorf("workload: unknown distribution %q", s)
}

// Config parameterizes synthetic job generation.
type Config struct {
	// Dist is the resource-level distribution.
	Dist Distribution
	// N is the number of jobs; the paper uses 400 for Figs. 8–9 and
	// Table III, and up to 1600 in the Fig. 10 job-pressure experiment.
	N int
	// Seed makes the set reproducible.
	Seed int64

	// Resource mapping. Defaults (zero values): memory in [MinMem, MaxMem]
	// = [256 MB, 2 GB] and threads in [MinThreads, MaxThreads] = [24, 240]
	// quantized to whole cores. Every job fits a single 8 GB device with
	// room to share (§III: "each job is guaranteed to fit within one Xeon
	// Phi"); the memory ceiling matches the bulk of the Table I range so
	// that, as in the paper's sensitivity study, the binding resource is
	// thread width rather than memory alone.
	MinMem, MaxMem         units.MB
	MinThreads, MaxThreads units.Threads
}

func (c Config) withDefaults() Config {
	if c.MinMem == 0 {
		c.MinMem = 256
	}
	if c.MaxMem == 0 {
		c.MaxMem = units.GB(2)
	}
	if c.MinThreads == 0 {
		c.MinThreads = 24
	}
	if c.MaxThreads == 0 {
		c.MaxThreads = 240
	}
	return c
}

// The normal-family parameters behind Fig. 7: a mid-range mean with
// σ = 0.15, the skewed variants shifting the mean by exactly one σ.
const (
	normalMean   = 0.5
	normalStddev = 0.15
)

// Level draws one resource level in [0, 1] from the distribution.
func (d Distribution) Level(r *rng.Source) float64 {
	switch d {
	case Uniform:
		return r.Float64()
	case Normal:
		return r.TruncNormal(normalMean, normalStddev, 0, 1)
	case LowSkew:
		return r.TruncNormal(normalMean-normalStddev, normalStddev, 0, 1)
	case HighSkew:
		return r.TruncNormal(normalMean+normalStddev, normalStddev, 0, 1)
	}
	panic("workload: invalid distribution")
}

// Generate builds the synthetic job set.
func Generate(cfg Config) []*job.Job {
	cfg = cfg.withDefaults()
	r := rng.New(cfg.Seed).Fork("workload-" + cfg.Dist.String())
	jobs := make([]*job.Job, cfg.N)
	for i := range jobs {
		jobs[i] = synthesize(i, cfg, r)
	}
	return jobs
}

// synthesize draws one synthetic offload job at resource level x.
func synthesize(id int, cfg Config, r *rng.Source) *job.Job {
	x := cfg.Dist.Level(r)

	mem := cfg.MinMem + units.MB(x*float64(cfg.MaxMem-cfg.MinMem))
	// Threads quantized to whole cores (multiples of 4), min one core's
	// worth above the floor.
	rawTh := float64(cfg.MinThreads) + x*float64(cfg.MaxThreads-cfg.MinThreads)
	th := units.Threads((int(rawTh)+3)/4) * 4
	if th < cfg.MinThreads {
		th = cfg.MinThreads
	}
	if th > cfg.MaxThreads {
		th = cfg.MaxThreads
	}

	j := &job.Job{
		ID:       id,
		Name:     fmt.Sprintf("syn-%s#%d", cfg.Dist, id),
		Workload: "synthetic",
		Mem:      mem,
		Threads:  th,
	}
	j.ActualPeakMem = units.MB(float64(mem) * r.Uniform(0.85, 1.0))

	// Phase profile: like the Table I apps, a setup host phase followed by
	// k offload/host-gap pairs. Offload intensity is independent of the
	// resource level so that the distributions differ only in resource
	// requirements, as in the paper's controlled experiments.
	k := r.UniformInt(4, 10)
	j.Phases = append(j.Phases, job.Phase{
		Kind:     job.HostPhase,
		Duration: units.Tick(r.UniformInt(int(1*units.Second), int(2*units.Second))),
	})
	for i := 0; i < k; i++ {
		j.Phases = append(j.Phases, job.Phase{
			Kind:     job.OffloadPhase,
			Duration: units.Tick(r.UniformInt(int(1500*units.Millisecond), int(3500*units.Millisecond))),
			Threads:  th,
		})
		j.Phases = append(j.Phases, job.Phase{
			Kind:     job.HostPhase,
			Duration: units.Tick(r.UniformInt(int(500*units.Millisecond), int(2*units.Second))),
		})
	}
	return j
}

// Histogram bins the job set's resource levels for the Fig. 7 reproduction.
// Levels are inferred from memory, which maps linearly to the level.
type Histogram struct {
	Dist  Distribution
	Bins  []int     // count per bin
	Edges []float64 // len(Bins)+1 bin edges in resource-level space
	Total int

	cfg Config // resource mapping for Observe
}

// NewHistogram returns an empty nbins-bin histogram using cfg's resource
// mapping; feed jobs through Observe. Streaming consumers use this pair so
// the set never has to be resident.
func NewHistogram(dist Distribution, cfg Config, nbins int) *Histogram {
	h := &Histogram{Dist: dist, Bins: make([]int, nbins),
		Edges: make([]float64, nbins+1), cfg: cfg.withDefaults()}
	for i := 0; i <= nbins; i++ {
		h.Edges[i] = float64(i) / float64(nbins)
	}
	return h
}

// Observe bins one job.
func (h *Histogram) Observe(j *job.Job) {
	nbins := len(h.Bins)
	span := float64(h.cfg.MaxMem - h.cfg.MinMem)
	x := float64(j.Mem-h.cfg.MinMem) / span
	bin := int(x * float64(nbins))
	if bin >= nbins {
		bin = nbins - 1
	}
	if bin < 0 {
		bin = 0
	}
	h.Bins[bin]++
	h.Total++
}

// BuildHistogram bins a synthetic job set into nbins equal-width resource
// bins.
func BuildHistogram(dist Distribution, jobs []*job.Job, cfg Config, nbins int) Histogram {
	h := NewHistogram(dist, cfg, nbins)
	for _, j := range jobs {
		h.Observe(j)
	}
	return *h
}

// MeanLevel returns the histogram's mean resource level, the summary used
// to verify the skew directions.
func (h Histogram) MeanLevel() float64 {
	if h.Total == 0 {
		return 0
	}
	sum := 0.0
	for i, c := range h.Bins {
		mid := (h.Edges[i] + h.Edges[i+1]) / 2
		sum += mid * float64(c)
	}
	return sum / float64(h.Total)
}
