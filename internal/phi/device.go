// Package phi simulates Intel Xeon Phi coprocessor devices at the level of
// detail the paper's schedulers observe: hardware threads, cores, device
// memory, COI processes and offload execution (paper §II).
//
// The device reproduces raw MPSS semantics: any host process can attach a
// COI process and launch offloads at any time, with *no* admission control.
// Consequences of oversubscription are modeled after the COSMIC paper [6],
// which this paper cites for its motivation numbers:
//
//   - Thread oversubscription: all running offloads slow down. The model is
//     processor sharing over the effective core capacity — with the default
//     (non-affinitized) thread placement, overlapping offloads contend for
//     the same low-numbered cores while other cores sit idle, so capacity
//     is the *widest single offload's* core footprint. [6] reports up to
//     ~800% degradation; that emerges here when many offloads overlap.
//
//   - Memory oversubscription: when the total *actual* (committed) memory
//     of resident processes exceeds device memory, an OOM killer terminates
//     randomly chosen processes until the rest fit — the arbitrary crash
//     behaviour of §II-C. Committed memory grows over a process's life
//     (small at attach, full at first offload), reproducing the "two jobs
//     fit now but crash later as their stacks grow" hazard.
//
// COSMIC-managed behaviour (offload serialization so thread oversubscription
// never happens, core affinitization, per-job memory containers) is layered
// on top by package cosmic; enabling it flips the device to affinitized
// accounting, where concurrent offloads occupy disjoint cores.
package phi

import (
	"fmt"
	"math"

	"phishare/internal/job"
	"phishare/internal/obs"
	"phishare/internal/rng"
	"phishare/internal/sim"
	"phishare/internal/units"
)

// Config describes a Xeon Phi model. The paper's cluster uses 5110P-class
// cards: 60 cores, 4 hardware threads per core, 8 GB device memory.
type Config struct {
	Cores          int
	ThreadsPerCore int
	Memory         units.MB
	// SpinContention models resident-set thread oversubscription: each COI
	// process's OpenMP worker pool persists after its first offload and
	// spins between offloads (Intel's KMP_BLOCKTIME behaviour), so when the
	// *combined declared threads of warm resident processes* exceed the
	// hardware threads, running offloads context-switch against spinning
	// workers. Offload speed is divided by
	//
	//	1 + SpinContention · max(0, warmThreads/HWThreads − 1).
	//
	// This is the §II-C / [6] degradation regime that makes the paper's
	// thread-bounded knapsack packing matter: a device packed with jobs
	// totaling ≤ 240 threads pays nothing, an arbitrarily packed one pays
	// proportionally to its oversubscription. Zero disables the effect
	// (useful for exact-timing unit tests).
	SpinContention float64
}

// DefaultSpinContention is the calibrated coefficient of the resident-set
// contention model; at 4 co-resident full-width jobs (4×240 threads) it
// yields a ~2x slowdown, the middle of the degradation range [6] reports.
const DefaultSpinContention = 0.35

// DefaultConfig is the 5110P used throughout the paper's evaluation,
// including the default contention model.
func DefaultConfig() Config {
	return Config{Cores: 60, ThreadsPerCore: 4, Memory: units.GB(8), SpinContention: DefaultSpinContention}
}

// BareConfig is the 5110P with the contention model disabled: pure
// hardware limits only. Unit tests with exact timing expectations use it.
func BareConfig() Config {
	return Config{Cores: 60, ThreadsPerCore: 4, Memory: units.GB(8)}
}

// HWThreads is the device's hardware thread count (240 on the 5110P).
func (c Config) HWThreads() units.Threads {
	return units.Threads(c.Cores * c.ThreadsPerCore)
}

func (c Config) validate() error {
	if c.Cores <= 0 || c.ThreadsPerCore <= 0 || c.Memory <= 0 || c.SpinContention < 0 {
		return fmt.Errorf("phi: invalid config %+v", c)
	}
	return nil
}

// UtilSink receives busy-core samples; metrics.CoreUtilization implements
// it. A nil sink disables sampling.
type UtilSink interface {
	// Record notes that from now on the device keeps busyCores cores busy.
	Record(now units.Tick, busyCores int)
}

// TraceSink observes offload lifecycle events on the device, at actual
// device occupancy times (after any COSMIC queueing). trace.Recorder
// implements it to reconstruct the usage profiles of Figs. 2–3.
type TraceSink interface {
	// OffloadStarted fires when a kernel begins occupying threads.
	OffloadStarted(now units.Tick, jobName string, threads units.Threads)
	// OffloadEnded fires when the kernel completes (completed=true) or its
	// process dies mid-offload (completed=false).
	OffloadEnded(now units.Tick, jobName string, completed bool)
}

// OffloadOutcome reports how an offload ended.
type OffloadOutcome int

const (
	// OffloadCompleted means the kernel ran to completion.
	OffloadCompleted OffloadOutcome = iota
	// OffloadAborted means the owning process was killed mid-offload.
	OffloadAborted
)

// KillReason explains a process termination.
type KillReason int

const (
	// KillOOM: the device OOM killer chose this process.
	KillOOM KillReason = iota
	// KillContainer: COSMIC's memory container caught the process
	// exceeding its declared limit.
	KillContainer
	// KillDetach: the owner detached the process.
	KillDetach
	// KillDeviceFailure: the whole device failed (card reset, node loss);
	// every resident process dies. Injected by the fault layer
	// (internal/faults).
	KillDeviceFailure
	// KillOffloadFault: a transient offload failure (COI transport error,
	// kernel fault) took the process down mid-run. Injected by the fault
	// layer.
	KillOffloadFault
)

func (k KillReason) String() string {
	switch k {
	case KillOOM:
		return "oom"
	case KillContainer:
		return "container"
	case KillDetach:
		return "detach"
	case KillDeviceFailure:
		return "device-failure"
	case KillOffloadFault:
		return "offload-fault"
	}
	return fmt.Sprintf("KillReason(%d)", int(k))
}

// Process is the device-side COI process created for each host job that
// offloads to this device (§II-B).
type Process struct {
	Job *job.Job

	dev   *Device
	alive bool
	usage units.MB // committed device memory right now
	warm  bool     // OpenMP worker pool created (first offload ran)

	off *offload // in-flight offload, nil if the job is in a host phase

	// OnKill, if set, is invoked when the device (or a manager) kills the
	// process. The in-flight offload, if any, is aborted first.
	OnKill func(reason KillReason)
}

// Alive reports whether the process still exists on the device.
func (p *Process) Alive() bool { return p.alive }

// Usage returns the process's committed device memory.
func (p *Process) Usage() units.MB { return p.usage }

// Offloading reports whether the process has an in-flight offload.
func (p *Process) Offloading() bool { return p.off != nil }

// offload is one in-flight kernel execution.
type offload struct {
	proc      *Process
	threads   units.Threads
	remaining float64 // work remaining, in ticks at full speed
	done      func(OffloadOutcome)
}

// Stats aggregates device activity counters.
type Stats struct {
	OffloadsStarted   int
	OffloadsCompleted int
	OffloadsAborted   int
	ProcessesAttached int
	OOMKills          int
	// Failures counts whole-device failures (Fail); AttachRejects counts
	// processes that were dead on arrival because the attach was rejected
	// (device down, or an impossible container) without committing memory.
	Failures      int
	AttachRejects int
}

// Device is one simulated coprocessor.
type Device struct {
	ID  string
	cfg Config

	eng  *sim.Lane
	rand *rng.Source
	sink UtilSink

	// Affinitized selects COSMIC-style core accounting: concurrent offloads
	// occupy disjoint cores (package cosmic sets this). Without it, default
	// MPSS placement overlaps offloads on the same cores.
	Affinitized bool

	// Trace, if non-nil, observes offload start/end events.
	Trace TraceSink

	procs    map[*Process]bool
	offloads []*offload
	// down marks a failed device (Fail/Repair): attaches are rejected dead
	// on arrival until the repair lands.
	down bool
	// warmThreads is the combined declared thread count of processes whose
	// worker pools exist (see Config.SpinContention).
	warmThreads units.Threads

	lastAdvance units.Tick
	// timerGen cancels completion ticks by generation: replan bumps it and
	// schedules a plain pooled event carrying the new value; a fired event
	// whose generation is stale was superseded and does nothing. This
	// replaces a sim.Timer per replan (timer struct + wrapper closure) with
	// one closure on the engine's pooled event path.
	timerGen uint64
	lastBusy int

	// Completion-tick scratch (onCompletionTick fires once per offload
	// completion; these keep the partition of d.offloads allocation-free).
	finishedScratch []*offload
	stillScratch    []*offload
	// offFree recycles offload records: a steady-state device allocates
	// nothing per offload (records are node-confined, so the free list needs
	// no locks — the parallel core runs each device on one lane). The struct
	// is recycled the moment its end is decided; the deferred done
	// notification captures the callback, never the record.
	offFree []*offload

	stats Stats

	// Observability (SetObserver); nil handles no-op when disabled. The
	// View is lane-affine: epoch-context emissions buffer in the node
	// lane's shard and surface at the canonical walk, so instrumented runs
	// stay parallel with bit-identical trace output.
	obs         *obs.View
	obsDev      any // device ID pre-boxed once so hot emit sites skip the per-event string-header allocation
	obsOOM      *obs.Counter
	obsStarted  *obs.Counter
	obsComplete *obs.Counter
	obsAborted  *obs.Counter
	obsSpeed    *obs.Histogram
}

// NewDevice creates a device. rand drives OOM victim selection; a nil sink
// disables utilization sampling.
func NewDevice(eng *sim.Lane, id string, cfg Config, rand *rng.Source, sink UtilSink) *Device {
	if err := cfg.validate(); err != nil {
		panic(err)
	}
	if rand == nil {
		rand = rng.New(1)
	}
	d := &Device{
		ID:    id,
		cfg:   cfg,
		eng:   eng,
		rand:  rand,
		sink:  sink,
		procs: map[*Process]bool{},
	}
	return d
}

// Config returns the device model.
func (d *Device) Config() Config { return d.cfg }

// SetObserver attaches the observability layer; series are labelled with
// the device ID. A nil observer disables instrumentation.
func (d *Device) SetObserver(o *obs.Observer) {
	d.obs = o.View(d.eng)
	d.obsDev = d.ID
	d.obsOOM = o.Counter("phi_oom_kills_total", "device", d.ID)
	d.obsStarted = o.Counter("phi_offloads_started_total", "device", d.ID)
	d.obsComplete = o.Counter("phi_offloads_completed_total", "device", d.ID)
	d.obsAborted = o.Counter("phi_offloads_aborted_total", "device", d.ID)
	d.obsSpeed = o.Histogram("phi_speed_factor",
		[]float64{0.1, 0.25, 0.5, 0.75, 0.9, 1}, "device", d.ID)
}

// Speed exposes the current processor-sharing rate (see speed) for
// samplers and monitoring probes.
func (d *Device) Speed() float64 { return d.speed() }

// Stats returns activity counters.
func (d *Device) Stats() Stats { return d.stats }

// ProcessCount is the number of live COI processes.
func (d *Device) ProcessCount() int { return len(d.procs) }

// RunningThreads is the total hardware-thread demand of in-flight offloads.
func (d *Device) RunningThreads() units.Threads {
	var t units.Threads
	for _, o := range d.offloads {
		t += o.threads
	}
	return t
}

// RunningOffloads is the number of in-flight offloads.
func (d *Device) RunningOffloads() int { return len(d.offloads) }

// CommittedMemory is the total actual memory committed by live processes.
func (d *Device) CommittedMemory() units.MB {
	var m units.MB
	for p := range d.procs {
		m += p.usage
	}
	return m
}

// Attach creates a COI process for j. Like real MPSS, it performs no
// admission control: memory pressure materializes later, via the OOM model.
// The initial commitment is a fraction of the job's eventual peak —
// Linux does not commit memory at allocation (§II-C). Attaching to a failed
// device (Fail) yields a dead-on-arrival process.
func (d *Device) Attach(j *job.Job) *Process {
	if d.down {
		return d.FailAttach(j, KillDeviceFailure)
	}
	p := &Process{
		Job:   j,
		dev:   d,
		alive: true,
		usage: units.MB(float64(j.ActualPeakMem) * 0.3),
	}
	d.procs[p] = true
	d.stats.ProcessesAttached++
	d.checkOOM()
	return p
}

// FailAttach rejects an attach: it returns a process that is dead on
// arrival, with the kill notification delivered asynchronously like any
// other kill. No memory is ever committed, so no co-resident process can be
// disturbed — COSMIC uses this for containers that cannot be created at all
// (declared limit above physical device memory), and Attach uses it while
// the device is down.
func (d *Device) FailAttach(j *job.Job, reason KillReason) *Process {
	p := &Process{Job: j, dev: d}
	d.stats.AttachRejects++
	d.eng.After(0, func() {
		if p.OnKill != nil {
			p.OnKill(reason)
		}
	})
	return p
}

// Fail marks the device failed: every resident process is killed with
// reason (in deterministic job-ID order), and subsequent attaches are
// rejected dead on arrival until Repair. Models a card reset or the card's
// share of a node loss — §II-C's crash behaviour writ large. Returns the
// number of processes evicted. Failing an already-down device only re-kills
// whatever attached meanwhile (normally nothing).
func (d *Device) Fail(reason KillReason) int {
	d.down = true
	d.stats.Failures++
	victims := make([]*Process, 0, len(d.procs))
	for p := range d.procs {
		victims = append(victims, p)
	}
	sortProcs(victims)
	for _, p := range victims {
		d.terminate(p, reason)
	}
	return len(victims)
}

// Repair brings a failed device back: attaches succeed again. State is
// empty by construction (Fail killed everything; attaches while down never
// landed).
func (d *Device) Repair() { d.down = false }

// Down reports whether the device is failed (between Fail and Repair).
func (d *Device) Down() bool { return d.down }

// RunningProcs returns the owners of in-flight offloads, in offload start
// order (deterministic). The fault layer draws transient-offload-failure
// victims from it.
func (d *Device) RunningProcs() []*Process {
	ps := make([]*Process, len(d.offloads))
	for i, o := range d.offloads {
		ps[i] = o.proc
	}
	return ps
}

// Detach removes the process, releasing its memory. An in-flight offload is
// aborted. Detaching a dead process is a no-op.
func (d *Device) Detach(p *Process) {
	if !p.alive {
		return
	}
	d.terminate(p, KillDetach)
}

// Kill terminates the process for the given reason (used by COSMIC's
// memory containers).
func (d *Device) Kill(p *Process, reason KillReason) {
	if !p.alive {
		return
	}
	d.terminate(p, reason)
}

func (d *Device) terminate(p *Process, reason KillReason) {
	p.alive = false
	delete(d.procs, p)
	if p.warm {
		p.warm = false
		d.warmThreads -= p.Job.Threads
	}
	if p.off != nil {
		d.abortOffload(p.off)
	}
	if reason != KillDetach {
		// Deliver asynchronously so the owner observes a consistent device,
		// and so a kill that happens synchronously inside Attach (OOM on
		// admission) still reaches an OnKill handler installed just after
		// Attach returns.
		d.eng.After(0, func() {
			if p.OnKill != nil {
				p.OnKill(reason)
			}
		})
	}
}

// StartOffload launches a kernel on the device for process p. work is the
// kernel's duration at full speed; done fires when the offload completes or
// aborts. Exactly one offload per process may be in flight (the COI model:
// the host process blocks on the offload pragma).
//
// Raw MPSS semantics: the offload starts immediately regardless of thread
// pressure. The offload also commits the process's memory to its peak
// (buffers are transferred in), which can trigger the OOM killer — possibly
// killing p itself, in which case done receives OffloadAborted.
func (d *Device) StartOffload(p *Process, threads units.Threads, work units.Tick, done func(OffloadOutcome)) {
	if !p.alive {
		panic("phi: offload from dead process " + p.Job.Name)
	}
	if p.off != nil {
		panic("phi: concurrent offloads from one process " + p.Job.Name)
	}
	if threads <= 0 || work <= 0 {
		panic(fmt.Sprintf("phi: invalid offload threads=%v work=%v", threads, work))
	}
	d.advance()
	if !p.warm {
		// First offload: the process's OpenMP worker pool comes to life and
		// persists (spinning) for the rest of the process's residency.
		p.warm = true
		d.warmThreads += p.Job.Threads
	}
	o := d.allocOffload()
	o.proc, o.threads, o.remaining, o.done = p, threads, float64(work), done
	p.off = o
	d.offloads = append(d.offloads, o)
	d.stats.OffloadsStarted++
	d.obsStarted.Inc()
	if d.Trace != nil {
		// The sink is shared across devices: defer the call through the
		// lane so it lands in canonical order (immediate in serial mode).
		now, name := d.eng.Now(), p.Job.Name
		d.eng.Global(func() { d.Trace.OffloadStarted(now, name, threads) })
	}
	if d.obs != nil {
		d.obs.Emit(d.eng.Now(), obs.LayerPhi, "offload_start",
			obs.F("device", d.obsDev), obs.F("job", p.Job.ID),
			obs.F("threads", threads), obs.F("work_ms", work))
	}

	// Transferring in the offload's buffers commits the process's peak.
	p.usage = p.Job.ActualPeakMem
	d.checkOOM()
	if !p.alive {
		return // OOM killed p itself; done already notified via abort.
	}
	d.replan()
}

// abortOffload removes o from the run queue and notifies its owner.
func (d *Device) abortOffload(o *offload) {
	d.advance()
	for i, x := range d.offloads {
		if x == o {
			d.offloads = append(d.offloads[:i], d.offloads[i+1:]...)
			break
		}
	}
	o.proc.off = nil
	d.stats.OffloadsAborted++
	d.obsAborted.Inc()
	if d.Trace != nil {
		now, name := d.eng.Now(), o.proc.Job.Name
		d.eng.Global(func() { d.Trace.OffloadEnded(now, name, false) })
	}
	if d.obs != nil {
		d.obs.Emit(d.eng.Now(), obs.LayerPhi, "offload_end",
			obs.F("device", d.obsDev), obs.F("job", o.proc.Job.ID),
			obs.F("completed", false))
	}
	done := o.done
	d.freeOffload(o)
	d.eng.After(0, func() { done(OffloadAborted) })
	d.replan()
}

func (d *Device) allocOffload() *offload {
	if n := len(d.offFree); n > 0 {
		o := d.offFree[n-1]
		d.offFree[n-1] = nil
		d.offFree = d.offFree[:n-1]
		return o
	}
	return &offload{}
}

// freeOffload clears the record (dropping its Process and callback so they
// can be collected) and returns it to the device's free list.
func (d *Device) freeOffload(o *offload) {
	o.proc, o.threads, o.remaining, o.done = nil, 0, 0, nil
	d.offFree = append(d.offFree, o)
}

// speed returns the current processor-sharing rate in (0, 1]: the ratio of
// effective hardware-thread capacity to running-offload demand (capped at
// 1), divided by the resident-set spin-contention factor (see
// Config.SpinContention).
func (d *Device) speed() float64 {
	demand := 0
	for _, o := range d.offloads {
		demand += int(o.threads)
	}
	if demand == 0 {
		return 1
	}
	capacity := d.busyCores() * d.cfg.ThreadsPerCore
	rate := 1.0
	if capacity < demand {
		rate = float64(capacity) / float64(demand)
	}
	if d.cfg.SpinContention > 0 {
		hw := float64(d.cfg.HWThreads())
		if over := (float64(d.warmThreads) - hw) / hw; over > 0 {
			rate /= 1 + d.cfg.SpinContention*over
		}
	}
	return rate
}

// busyCores returns how many cores the in-flight offloads keep busy.
// Affinitized: disjoint placement, so footprints add. Default MPSS
// placement: every offload's threads start at core 0, so footprints
// overlap and only the widest counts (§IV-D2's motivation for COSMIC's
// affinitization).
func (d *Device) busyCores() int {
	cores := 0
	for _, o := range d.offloads {
		c := o.threads.Cores()
		if d.Affinitized {
			cores += c
		} else if c > cores {
			cores = c
		}
	}
	if cores > d.cfg.Cores {
		cores = d.cfg.Cores
	}
	return cores
}

// advance applies elapsed progress to every in-flight offload.
func (d *Device) advance() {
	now := d.eng.Now()
	elapsed := now - d.lastAdvance
	d.lastAdvance = now
	if elapsed > 0 {
		rate := d.speed()
		for _, o := range d.offloads {
			o.remaining -= float64(elapsed) * rate
		}
	}
	d.sample()
}

func (d *Device) sample() {
	if d.sink == nil {
		return
	}
	busy := d.busyCores()
	if busy != d.lastBusy {
		d.sink.Record(d.eng.Now(), busy)
		d.lastBusy = busy
	}
}

const workEpsilon = 1e-6

// replan schedules the next completion event under the current sharing rate.
func (d *Device) replan() {
	d.timerGen++ // supersede any outstanding completion tick
	d.sample()
	if len(d.offloads) == 0 {
		return
	}
	min := math.Inf(1)
	for _, o := range d.offloads {
		if o.remaining < min {
			min = o.remaining
		}
	}
	if min < 0 {
		min = 0
	}
	rate := d.speed()
	// The slowdown-factor histogram samples the rate at every replan: each
	// offload start/end re-evaluates sharing, so the distribution captures
	// exactly the contention regimes the device passes through.
	d.obsSpeed.Observe(rate)
	dt := units.Tick(math.Ceil(min / rate))
	gen := d.timerGen
	d.eng.After(dt, func() {
		if gen == d.timerGen {
			d.onCompletionTick()
		}
	})
}

// onCompletionTick fires when the earliest offload should be done; it
// completes everything that has run out of work and replans.
func (d *Device) onCompletionTick() {
	d.advance()
	finished := d.finishedScratch[:0]
	still := d.stillScratch[:0]
	for _, o := range d.offloads {
		if o.remaining <= workEpsilon {
			finished = append(finished, o)
		} else {
			still = append(still, o)
		}
	}
	// Swap buffers: the old offload list becomes the next tick's scratch.
	d.stillScratch = d.offloads[:0]
	d.offloads = still
	d.finishedScratch = finished
	for _, o := range finished {
		o.proc.off = nil
		d.stats.OffloadsCompleted++
		d.obsComplete.Inc()
		if d.Trace != nil {
			now, name := d.eng.Now(), o.proc.Job.Name
			d.eng.Global(func() { d.Trace.OffloadEnded(now, name, true) })
		}
		if d.obs != nil {
			d.obs.Emit(d.eng.Now(), obs.LayerPhi, "offload_end",
				obs.F("device", d.obsDev), obs.F("job", o.proc.Job.ID),
				obs.F("completed", true))
		}
		done := o.done
		d.freeOffload(o)
		d.eng.After(0, func() { done(OffloadCompleted) })
	}
	d.replan()
}

// checkOOM models the Linux OOM killer on the card: while committed memory
// exceeds physical memory, a random process dies (§II-C: "randomly
// terminates processes").
func (d *Device) checkOOM() {
	for d.CommittedMemory() > d.cfg.Memory && len(d.procs) > 0 {
		victims := make([]*Process, 0, len(d.procs))
		for p := range d.procs {
			victims = append(victims, p)
		}
		// Deterministic order before the random draw.
		sortProcs(victims)
		victim := victims[d.rand.Intn(len(victims))]
		d.stats.OOMKills++
		d.obsOOM.Inc()
		if d.obs != nil {
			d.obs.Emit(d.eng.Now(), obs.LayerPhi, "oom_kill",
				obs.F("device", d.obsDev), obs.F("job", victim.Job.ID),
				obs.F("committed_mb", d.CommittedMemory()),
				obs.F("device_mb", d.cfg.Memory))
		}
		d.terminate(victim, KillOOM)
	}
}

func sortProcs(ps []*Process) {
	// Insertion sort by job ID: n is tiny (resident jobs per device).
	for i := 1; i < len(ps); i++ {
		for j := i; j > 0 && ps[j].Job.ID < ps[j-1].Job.ID; j-- {
			ps[j], ps[j-1] = ps[j-1], ps[j]
		}
	}
}

// FreeHWThreads is the hardware-thread headroom: total minus in-flight
// demand. Negative when oversubscribed (raw mode only).
func (d *Device) FreeHWThreads() units.Threads {
	return d.cfg.HWThreads() - d.RunningThreads()
}

// Snapshot is a point-in-time view of device state — what the real stack
// exposes through micinfo and the coprocessor's /proc filesystem (§II-B),
// and what monitoring or estimation tooling polls.
type Snapshot struct {
	ID              string
	ResidentJobs    int
	RunningOffloads int
	RunningThreads  units.Threads
	BusyCores       int
	CommittedMemory units.MB
	TotalMemory     units.MB
	WarmThreads     units.Threads
}

// Snapshot captures the current device state.
func (d *Device) Snapshot() Snapshot {
	return Snapshot{
		ID:              d.ID,
		ResidentJobs:    len(d.procs),
		RunningOffloads: len(d.offloads),
		RunningThreads:  d.RunningThreads(),
		BusyCores:       d.busyCores(),
		CommittedMemory: d.CommittedMemory(),
		TotalMemory:     d.cfg.Memory,
		WarmThreads:     d.warmThreads,
	}
}

// String renders the snapshot micinfo-style.
func (s Snapshot) String() string {
	return fmt.Sprintf("%s: jobs=%d offloads=%d threads=%v cores=%d mem=%v/%v warm=%v",
		s.ID, s.ResidentJobs, s.RunningOffloads, s.RunningThreads,
		s.BusyCores, s.CommittedMemory, s.TotalMemory, s.WarmThreads)
}
