package phi

import (
	"fmt"
	"math"

	"phishare/internal/sim"
	"phishare/internal/units"
)

// Link models the host↔coprocessor PCIe interconnect that MPSS's SCIF/COI
// layers move offload buffers across (§II-B). Every offload pragma with
// in/out clauses performs DMA transfers before and after the kernel runs
// (Fig. 1's `in(a: length(SIZE))...`); concurrent transfers from co-resident
// jobs share the link's bandwidth.
//
// The sharing model is processor sharing, like the device's compute model:
// n in-flight transfers each progress at bandwidth/n. A 5110P-era host
// moves ~6 GB/s over PCIe gen2 x16.
//
// The link is a per-node resource: all devices (and all jobs) on one
// compute server share it. Transfers consume no coprocessor threads — DMA
// runs while cores are free — so COSMIC's offload admission governs only
// the compute section.
type Link struct {
	eng       *sim.Lane
	bandwidth float64 // MB per tick

	transfers   []*transfer
	lastAdvance units.Tick
	timer       *sim.Timer

	stats LinkStats
}

// LinkStats counts link activity.
type LinkStats struct {
	Transfers    int
	BytesMoved   units.MB
	PeakInFlight int
}

type transfer struct {
	remaining float64 // MB
	done      func()
}

// DefaultLinkBandwidthMBps is PCIe gen2 x16's practical throughput.
const DefaultLinkBandwidthMBps = 6000.0

// NewLink creates a link with the given bandwidth in MB/s.
func NewLink(eng *sim.Lane, bandwidthMBps float64) *Link {
	if bandwidthMBps <= 0 {
		panic(fmt.Sprintf("phi: non-positive link bandwidth %v", bandwidthMBps))
	}
	return &Link{
		eng:       eng,
		bandwidth: bandwidthMBps / float64(units.Second), // MB per tick
	}
}

// Stats returns activity counters.
func (l *Link) Stats() LinkStats { return l.stats }

// InFlight is the number of active transfers.
func (l *Link) InFlight() int { return len(l.transfers) }

// Transfer moves size MB across the link and calls done on completion.
// Zero-size transfers complete immediately (asynchronously, preserving
// event ordering).
func (l *Link) Transfer(size units.MB, done func()) {
	if size < 0 {
		panic(fmt.Sprintf("phi: negative transfer size %v", size))
	}
	if size == 0 {
		l.eng.After(0, done)
		return
	}
	l.advance()
	l.transfers = append(l.transfers, &transfer{remaining: float64(size), done: done})
	l.stats.Transfers++
	l.stats.BytesMoved += size
	if len(l.transfers) > l.stats.PeakInFlight {
		l.stats.PeakInFlight = len(l.transfers)
	}
	l.replan()
}

// rate is the per-transfer progress in MB per tick.
func (l *Link) rate() float64 {
	if len(l.transfers) == 0 {
		return l.bandwidth
	}
	return l.bandwidth / float64(len(l.transfers))
}

func (l *Link) advance() {
	now := l.eng.Now()
	elapsed := now - l.lastAdvance
	l.lastAdvance = now
	if elapsed > 0 && len(l.transfers) > 0 {
		r := l.rate()
		for _, t := range l.transfers {
			t.remaining -= float64(elapsed) * r
		}
	}
}

func (l *Link) replan() {
	if l.timer != nil {
		l.timer.Stop()
		l.timer = nil
	}
	if len(l.transfers) == 0 {
		return
	}
	min := math.Inf(1)
	for _, t := range l.transfers {
		if t.remaining < min {
			min = t.remaining
		}
	}
	if min < 0 {
		min = 0
	}
	dt := units.Tick(math.Ceil(min / l.rate()))
	l.timer = l.eng.AfterTimer(dt, l.onTick)
}

func (l *Link) onTick() {
	l.timer = nil
	l.advance()
	var still []*transfer
	var finished []*transfer
	for _, t := range l.transfers {
		if t.remaining <= workEpsilon {
			finished = append(finished, t)
		} else {
			still = append(still, t)
		}
	}
	l.transfers = still
	for _, t := range finished {
		done := t.done
		l.eng.After(0, done)
	}
	l.replan()
}
