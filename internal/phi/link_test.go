package phi

import (
	"testing"

	"phishare/internal/sim"
	"phishare/internal/units"
)

func TestLinkSingleTransfer(t *testing.T) {
	eng := sim.New()
	l := NewLink(eng.NodeLane(0), 6000) // 6 MB/ms
	var end units.Tick
	l.Transfer(600, func() { end = eng.Now() })
	eng.Run()
	if end != 100 { // 600 MB at 6 MB/ms
		t.Errorf("transfer ended at %v, want 100", end)
	}
	if s := l.Stats(); s.Transfers != 1 || s.BytesMoved != 600 {
		t.Errorf("stats %+v", s)
	}
}

func TestLinkSharedBandwidth(t *testing.T) {
	// Two equal transfers: each gets half the bandwidth and takes twice
	// as long.
	eng := sim.New()
	l := NewLink(eng.NodeLane(0), 6000)
	var ends []units.Tick
	for i := 0; i < 2; i++ {
		l.Transfer(600, func() { ends = append(ends, eng.Now()) })
	}
	eng.Run()
	for _, e := range ends {
		if e != 200 {
			t.Errorf("shared transfer ended at %v, want 200", e)
		}
	}
}

func TestLinkStaggeredSharing(t *testing.T) {
	// A (1200 MB) starts alone; B (300 MB) joins at t=100 when A has
	// 600 MB left. Shared rate 3 MB/ms: B finishes at 200, A has 300 left,
	// full rate again, done at 250.
	eng := sim.New()
	l := NewLink(eng.NodeLane(0), 6000)
	var aEnd, bEnd units.Tick
	l.Transfer(1200, func() { aEnd = eng.Now() })
	eng.At(100, func() {
		l.Transfer(300, func() { bEnd = eng.Now() })
	})
	eng.Run()
	if bEnd != 200 {
		t.Errorf("B ended at %v, want 200", bEnd)
	}
	if aEnd != 250 {
		t.Errorf("A ended at %v, want 250", aEnd)
	}
}

func TestLinkZeroTransferCompletesAsync(t *testing.T) {
	eng := sim.New()
	l := NewLink(eng.NodeLane(0), 6000)
	fired := false
	l.Transfer(0, func() { fired = true })
	if fired {
		t.Error("zero transfer completed synchronously")
	}
	eng.Run()
	if !fired {
		t.Error("zero transfer never completed")
	}
}

func TestLinkNegativeSizePanics(t *testing.T) {
	eng := sim.New()
	l := NewLink(eng.NodeLane(0), 6000)
	defer func() {
		if recover() == nil {
			t.Error("negative size accepted")
		}
	}()
	l.Transfer(-1, func() {})
}

func TestNewLinkValidatesBandwidth(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("zero bandwidth accepted")
		}
	}()
	NewLink(sim.New().NodeLane(0), 0)
}

func TestLinkPeakInFlight(t *testing.T) {
	eng := sim.New()
	l := NewLink(eng.NodeLane(0), 6000)
	for i := 0; i < 3; i++ {
		l.Transfer(60, func() {})
	}
	if l.InFlight() != 3 {
		t.Errorf("in flight %d", l.InFlight())
	}
	eng.Run()
	if l.Stats().PeakInFlight != 3 {
		t.Errorf("peak %d", l.Stats().PeakInFlight)
	}
	if l.InFlight() != 0 {
		t.Error("transfers leaked")
	}
}
