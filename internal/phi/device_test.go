package phi

import (
	"strings"
	"testing"

	"phishare/internal/job"
	"phishare/internal/rng"
	"phishare/internal/sim"
	"phishare/internal/units"
)

func mkJob(id int, mem units.MB, threads units.Threads) *job.Job {
	return &job.Job{
		ID: id, Name: "j", Workload: "test",
		Mem: mem, Threads: threads, ActualPeakMem: mem,
		Phases: []job.Phase{{Kind: job.OffloadPhase, Duration: 1000, Threads: threads}},
	}
}

// newDev builds a contention-free device so timing expectations stay exact;
// the spin-contention model has its own tests below.
func newDev(eng *sim.Engine) *Device {
	return NewDevice(eng.NodeLane(0), "node0/mic0", BareConfig(), rng.New(1), nil)
}

func TestConfigHWThreads(t *testing.T) {
	if DefaultConfig().HWThreads() != 240 {
		t.Errorf("default HW threads = %v, want 240", DefaultConfig().HWThreads())
	}
}

func TestInvalidConfigPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("invalid config did not panic")
		}
	}()
	NewDevice(sim.New().NodeLane(0), "x", Config{}, nil, nil)
}

func TestSingleOffloadFullSpeed(t *testing.T) {
	eng := sim.New()
	d := newDev(eng)
	p := d.Attach(mkJob(1, 500, 240))
	var doneAt units.Tick
	var outcome OffloadOutcome
	d.StartOffload(p, 240, 5000, func(o OffloadOutcome) {
		doneAt = eng.Now()
		outcome = o
	})
	eng.Run()
	if outcome != OffloadCompleted {
		t.Fatalf("outcome = %v", outcome)
	}
	if doneAt != 5000 {
		t.Errorf("offload finished at %v, want 5000", doneAt)
	}
	if d.Stats().OffloadsCompleted != 1 {
		t.Errorf("stats %+v", d.Stats())
	}
}

func TestAffinitizedConcurrentOffloadsFullSpeed(t *testing.T) {
	// Two 120-thread offloads, affinitized: disjoint cores, no slowdown.
	eng := sim.New()
	d := newDev(eng)
	d.Affinitized = true
	var ends []units.Tick
	for i := 0; i < 2; i++ {
		p := d.Attach(mkJob(i, 500, 120))
		d.StartOffload(p, 120, 4000, func(OffloadOutcome) {
			ends = append(ends, eng.Now())
		})
	}
	eng.Run()
	for _, e := range ends {
		if e != 4000 {
			t.Errorf("affinitized concurrent offload ended at %v, want 4000", e)
		}
	}
}

func TestRawOverlapSlowsDown(t *testing.T) {
	// Default MPSS placement: two 120-thread offloads overlap on the same
	// 30 cores (120 HW threads capacity vs 240 demand) => half speed.
	eng := sim.New()
	d := newDev(eng)
	var ends []units.Tick
	for i := 0; i < 2; i++ {
		p := d.Attach(mkJob(i, 500, 120))
		d.StartOffload(p, 120, 4000, func(OffloadOutcome) {
			ends = append(ends, eng.Now())
		})
	}
	eng.Run()
	for _, e := range ends {
		if e != 8000 {
			t.Errorf("overlapping offload ended at %v, want 8000 (2x slowdown)", e)
		}
	}
}

func TestThreadOversubscriptionSlowdown(t *testing.T) {
	// Four 240-thread offloads in raw mode: demand 960 over 240 capacity =>
	// 4x slowdown, the §II-C regime ([6] reports up to 8x with more).
	eng := sim.New()
	d := newDev(eng)
	var ends []units.Tick
	for i := 0; i < 4; i++ {
		p := d.Attach(mkJob(i, 500, 240))
		d.StartOffload(p, 240, 2000, func(OffloadOutcome) {
			ends = append(ends, eng.Now())
		})
	}
	eng.Run()
	if len(ends) != 4 {
		t.Fatalf("%d offloads finished, want 4", len(ends))
	}
	for _, e := range ends {
		if e != 8000 {
			t.Errorf("oversubscribed offload ended at %v, want 8000", e)
		}
	}
}

func TestStaggeredSharingAccountsProgress(t *testing.T) {
	// Offload A (240 threads, 4000 work) runs alone for 2000 ticks, then B
	// (240 threads, 1000 work) joins: both at half speed. B needs 1000 work
	// => 2000 ticks => finishes at 4000, with A at 1000 work remaining.
	// Alone again at full speed, A finishes at 5000.
	eng := sim.New()
	d := newDev(eng)
	pa := d.Attach(mkJob(1, 500, 240))
	pb := d.Attach(mkJob(2, 500, 240))
	var aEnd, bEnd units.Tick
	d.StartOffload(pa, 240, 4000, func(OffloadOutcome) { aEnd = eng.Now() })
	eng.At(2000, func() {
		d.StartOffload(pb, 240, 1000, func(OffloadOutcome) { bEnd = eng.Now() })
	})
	eng.Run()
	if bEnd != 4000 {
		t.Errorf("B ended at %v, want 4000", bEnd)
	}
	if aEnd != 5000 {
		t.Errorf("A ended at %v, want 5000", aEnd)
	}
}

func TestOOMKillsOnOversubscribedMemory(t *testing.T) {
	// Two 5 GB jobs on an 8 GB card: attach commits 30%, fine; the second
	// offload commit pushes it over and the OOM killer fires.
	eng := sim.New()
	d := newDev(eng)
	j1, j2 := mkJob(1, 5000, 60), mkJob(2, 5000, 60)
	p1 := d.Attach(j1)
	p2 := d.Attach(j2)
	killed := map[int]KillReason{}
	p1.OnKill = func(r KillReason) { killed[1] = r }
	p2.OnKill = func(r KillReason) { killed[2] = r }
	outcomes := map[int]OffloadOutcome{}
	d.StartOffload(p1, 60, 1000, func(o OffloadOutcome) { outcomes[1] = o })
	if d.Stats().OOMKills != 0 {
		t.Fatalf("premature OOM kill")
	}
	d.StartOffload(p2, 60, 1000, func(o OffloadOutcome) { outcomes[2] = o })
	eng.Run()
	if d.Stats().OOMKills != 1 {
		t.Fatalf("OOM kills = %d, want 1", d.Stats().OOMKills)
	}
	if len(killed) != 1 {
		t.Fatalf("killed notifications: %v", killed)
	}
	for _, r := range killed {
		if r != KillOOM {
			t.Errorf("kill reason %v, want oom", r)
		}
	}
	// The survivor's offload must complete; the victim's aborts.
	aborted, completed := 0, 0
	for _, o := range outcomes {
		switch o {
		case OffloadAborted:
			aborted++
		case OffloadCompleted:
			completed++
		}
	}
	if aborted != 1 || completed != 1 {
		t.Errorf("outcomes: %v", outcomes)
	}
}

func TestHonestJobsNeverOOM(t *testing.T) {
	// Jobs whose peaks sum below device memory never trigger the killer.
	eng := sim.New()
	d := newDev(eng)
	for i := 0; i < 8; i++ {
		p := d.Attach(mkJob(i, 1000, 60))
		d.StartOffload(p, 60, 1000, func(OffloadOutcome) {})
	}
	eng.Run()
	if d.Stats().OOMKills != 0 {
		t.Errorf("honest jobs OOM-killed: %+v", d.Stats())
	}
}

func TestDetachAbortsOffload(t *testing.T) {
	eng := sim.New()
	d := newDev(eng)
	p := d.Attach(mkJob(1, 500, 60))
	var outcome OffloadOutcome = -1
	d.StartOffload(p, 60, 5000, func(o OffloadOutcome) { outcome = o })
	eng.At(1000, func() { d.Detach(p) })
	eng.Run()
	if outcome != OffloadAborted {
		t.Errorf("outcome = %v, want aborted", outcome)
	}
	if p.Alive() {
		t.Error("process alive after detach")
	}
	if d.ProcessCount() != 0 {
		t.Error("process count nonzero after detach")
	}
}

func TestDetachIsIdempotent(t *testing.T) {
	eng := sim.New()
	d := newDev(eng)
	p := d.Attach(mkJob(1, 500, 60))
	d.Detach(p)
	d.Detach(p)
	if d.ProcessCount() != 0 {
		t.Error("double detach corrupted process table")
	}
}

func TestDetachDoesNotInvokeOnKill(t *testing.T) {
	eng := sim.New()
	d := newDev(eng)
	p := d.Attach(mkJob(1, 500, 60))
	p.OnKill = func(KillReason) { t.Error("OnKill fired for voluntary detach") }
	d.Detach(p)
	eng.Run()
}

func TestKillContainerReason(t *testing.T) {
	eng := sim.New()
	d := newDev(eng)
	p := d.Attach(mkJob(1, 500, 60))
	var got KillReason = -1
	p.OnKill = func(r KillReason) { got = r }
	d.Kill(p, KillContainer)
	eng.Run()
	if got != KillContainer {
		t.Errorf("reason = %v, want container", got)
	}
}

func TestOffloadFromDeadProcessPanics(t *testing.T) {
	eng := sim.New()
	d := newDev(eng)
	p := d.Attach(mkJob(1, 500, 60))
	d.Detach(p)
	defer func() {
		if recover() == nil {
			t.Error("offload from dead process did not panic")
		}
	}()
	d.StartOffload(p, 60, 1000, func(OffloadOutcome) {})
}

func TestConcurrentOffloadsFromOneProcessPanic(t *testing.T) {
	eng := sim.New()
	d := newDev(eng)
	p := d.Attach(mkJob(1, 500, 60))
	d.StartOffload(p, 60, 1000, func(OffloadOutcome) {})
	defer func() {
		if recover() == nil {
			t.Error("second concurrent offload did not panic")
		}
	}()
	d.StartOffload(p, 60, 1000, func(OffloadOutcome) {})
}

func TestRunningThreadsAndFreeHWThreads(t *testing.T) {
	eng := sim.New()
	d := newDev(eng)
	d.Affinitized = true
	p1 := d.Attach(mkJob(1, 500, 120))
	p2 := d.Attach(mkJob(2, 500, 60))
	d.StartOffload(p1, 120, 1000, func(OffloadOutcome) {})
	d.StartOffload(p2, 60, 1000, func(OffloadOutcome) {})
	if d.RunningThreads() != 180 {
		t.Errorf("RunningThreads = %v, want 180", d.RunningThreads())
	}
	if d.FreeHWThreads() != 60 {
		t.Errorf("FreeHWThreads = %v, want 60", d.FreeHWThreads())
	}
	if d.RunningOffloads() != 2 {
		t.Errorf("RunningOffloads = %d, want 2", d.RunningOffloads())
	}
	eng.Run()
	if d.RunningThreads() != 0 || d.FreeHWThreads() != 240 {
		t.Error("thread accounting wrong after completion")
	}
}

type sinkRec struct {
	at   units.Tick
	busy int
}

type testSink struct{ recs []sinkRec }

func (s *testSink) Record(now units.Tick, busy int) {
	s.recs = append(s.recs, sinkRec{now, busy})
}

func TestUtilSinkSamples(t *testing.T) {
	eng := sim.New()
	sink := &testSink{}
	d := NewDevice(eng.NodeLane(0), "x", BareConfig(), rng.New(1), sink)
	d.Affinitized = true
	p := d.Attach(mkJob(1, 500, 120)) // 30 cores
	d.StartOffload(p, 120, 2000, func(OffloadOutcome) {})
	eng.Run()
	// Expect a 30-core sample at 0 and a 0-core sample at 2000.
	if len(sink.recs) < 2 {
		t.Fatalf("sink records: %v", sink.recs)
	}
	if sink.recs[0].busy != 30 || sink.recs[0].at != 0 {
		t.Errorf("first sample %v, want {0 30}", sink.recs[0])
	}
	last := sink.recs[len(sink.recs)-1]
	if last.busy != 0 || last.at != 2000 {
		t.Errorf("last sample %v, want {2000 0}", last)
	}
}

func TestBusyCoresCappedAtDeviceCores(t *testing.T) {
	eng := sim.New()
	sink := &testSink{}
	d := NewDevice(eng.NodeLane(0), "x", BareConfig(), rng.New(1), sink)
	d.Affinitized = true
	// 5 x 60 threads = 75 cores demanded, capped at 60.
	for i := 0; i < 5; i++ {
		p := d.Attach(mkJob(i, 200, 60))
		d.StartOffload(p, 60, 1000, func(OffloadOutcome) {})
	}
	for _, r := range sink.recs {
		if r.busy > 60 {
			t.Errorf("busy cores %d exceeds device cores", r.busy)
		}
	}
	eng.Run()
}

func TestDeterministicOOMVictims(t *testing.T) {
	run := func() []int {
		eng := sim.New()
		d := NewDevice(eng.NodeLane(0), "x", BareConfig(), rng.New(99), nil)
		var order []int
		for i := 0; i < 4; i++ {
			j := mkJob(i, 4000, 60)
			p := d.Attach(j)
			id := i
			p.OnKill = func(KillReason) { order = append(order, id) }
			// Attach itself can OOM-kill an earlier process — or the new
			// one — so only live processes offload (as a real host process
			// would: it is already dead before reaching its pragma).
			if p.Alive() {
				d.StartOffload(p, 60, 1000, func(OffloadOutcome) {})
			}
		}
		eng.Run()
		return order
	}
	a, b := run(), run()
	if len(a) == 0 {
		t.Fatal("expected OOM kills with 4x4GB on an 8GB card")
	}
	if len(a) != len(b) {
		t.Fatalf("kill counts differ: %v vs %v", a, b)
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("OOM victim order not deterministic: %v vs %v", a, b)
		}
	}
}

func TestSpinContentionSlowsOversubscribedResidents(t *testing.T) {
	// Default model: two warm 240-thread processes => warm 480/240, over=1,
	// divisor 1 + 0.35. A serialized-style single offload of 2000 work
	// takes 2700 once both pools are warm.
	eng := sim.New()
	d := NewDevice(eng.NodeLane(0), "x", DefaultConfig(), rng.New(1), nil)
	d.Affinitized = true
	p1 := d.Attach(mkJob(1, 500, 240))
	p2 := d.Attach(mkJob(2, 500, 240))
	// Warm both pools with instantaneous-ish offloads first.
	d.StartOffload(p1, 240, 1, func(OffloadOutcome) {})
	eng.Run()
	d.StartOffload(p2, 240, 1, func(OffloadOutcome) {})
	eng.Run()
	start := eng.Now()
	var end units.Tick
	d.StartOffload(p1, 240, 2000, func(OffloadOutcome) { end = eng.Now() })
	eng.Run()
	if got := end - start; got != 2700 {
		t.Errorf("contended offload took %v, want 2700 (1.35x)", got)
	}
}

func TestSpinContentionOnlyAfterFirstOffload(t *testing.T) {
	// A resident process that never offloaded has no worker pool yet and
	// causes no contention.
	eng := sim.New()
	d := NewDevice(eng.NodeLane(0), "x", DefaultConfig(), rng.New(1), nil)
	d.Affinitized = true
	d.Attach(mkJob(2, 500, 240)) // cold resident
	p1 := d.Attach(mkJob(1, 500, 240))
	var end units.Tick
	d.StartOffload(p1, 240, 2000, func(OffloadOutcome) { end = eng.Now() })
	eng.Run()
	if end != 2000 {
		t.Errorf("offload with cold co-resident took %v, want 2000", end)
	}
}

func TestSpinContentionClearsOnTermination(t *testing.T) {
	eng := sim.New()
	d := NewDevice(eng.NodeLane(0), "x", DefaultConfig(), rng.New(1), nil)
	d.Affinitized = true
	p1 := d.Attach(mkJob(1, 500, 240))
	p2 := d.Attach(mkJob(2, 500, 240))
	d.StartOffload(p2, 240, 1, func(OffloadOutcome) {})
	eng.Run()
	d.Detach(p2) // pool gone with the process
	var end units.Tick
	start := eng.Now()
	d.StartOffload(p1, 240, 2000, func(OffloadOutcome) { end = eng.Now() })
	eng.Run()
	if end-start != 2000 {
		t.Errorf("offload after co-resident detach took %v, want 2000", end-start)
	}
}

func TestSpinContentionWithinBudgetIsFree(t *testing.T) {
	// Warm residents totaling exactly the hardware threads pay nothing.
	eng := sim.New()
	d := NewDevice(eng.NodeLane(0), "x", DefaultConfig(), rng.New(1), nil)
	d.Affinitized = true
	var ends []units.Tick
	for i := 0; i < 4; i++ {
		p := d.Attach(mkJob(i, 500, 60))
		d.StartOffload(p, 60, 2000, func(OffloadOutcome) { ends = append(ends, eng.Now()) })
	}
	eng.Run()
	for _, e := range ends {
		if e != 2000 {
			t.Errorf("within-budget offload ended at %v, want 2000", e)
		}
	}
}

func TestNegativeSpinContentionRejected(t *testing.T) {
	cfg := BareConfig()
	cfg.SpinContention = -1
	defer func() {
		if recover() == nil {
			t.Error("negative SpinContention accepted")
		}
	}()
	NewDevice(sim.New().NodeLane(0), "x", cfg, nil, nil)
}

func TestSnapshot(t *testing.T) {
	eng := sim.New()
	d := newDev(eng)
	d.Affinitized = true
	p1 := d.Attach(mkJob(1, 1000, 120))
	d.Attach(mkJob(2, 500, 60)) // resident, cold
	d.StartOffload(p1, 120, 5000, func(OffloadOutcome) {})
	s := d.Snapshot()
	if s.ResidentJobs != 2 || s.RunningOffloads != 1 {
		t.Errorf("snapshot %+v", s)
	}
	if s.RunningThreads != 120 || s.BusyCores != 30 {
		t.Errorf("snapshot occupancy %+v", s)
	}
	if s.WarmThreads != 120 {
		t.Errorf("warm threads %v, want 120 (only the offloading job)", s.WarmThreads)
	}
	if s.TotalMemory != 8192 {
		t.Errorf("total memory %v", s.TotalMemory)
	}
	str := s.String()
	for _, want := range []string{"node0/mic0", "jobs=2", "offloads=1"} {
		if !strings.Contains(str, want) {
			t.Errorf("snapshot string %q missing %q", str, want)
		}
	}
	eng.Run()
	if after := d.Snapshot(); after.RunningOffloads != 0 || after.BusyCores != 0 {
		t.Errorf("post-run snapshot %+v", after)
	}
}
