// Package scheduler implements the paper's two baseline cluster
// configurations as condor.Policy implementations:
//
//   - Exclusive ("MC" = MPSS + Condor): whole-device allocation. Each Xeon
//     Phi is dedicated to one job for its lifetime, the prevailing policy
//     the paper argues against (§I, §III).
//
//   - RandomPack ("MCC" = MPSS + Condor + COSMIC): jobs may share devices;
//     the cluster level packs them onto *randomly chosen* devices with no
//     memory awareness at all, relying on COSMIC for node-level memory and
//     thread safety (§V: "they are packed arbitrarily to Xeon Phi
//     coprocessors and COSMIC prevents them from oversubscribing memory
//     and threads"). A job randomly sent to a full device waits at the
//     node, holding its Condor slot — the waste the knapsack avoids.
//
//   - Agnostic: the §III strawman — Condor treats the Phi as an opaque
//     resource, so jobs land anywhere and memory/thread oversubscription
//     occur freely. Used by the oversubscription ablation, never by the
//     paper's main comparisons.
package scheduler

import (
	"fmt"

	"phishare/internal/condor"
	"phishare/internal/rng"
)

// memoryGuard is the node-side admission expression shared by the safe
// policies: a machine accepts a job only if the job's declared memory fits
// the machine's free declared memory, so declared reservations never
// oversubscribe the card.
const memoryGuard = "TARGET." + condor.AttrRequestPhiMemory + " <= MY." + condor.AttrPhiFreeMemory

// Exclusive is the MC policy.
type Exclusive struct{}

// NewExclusive returns the MC (MPSS+Condor) policy.
func NewExclusive() *Exclusive { return &Exclusive{} }

// Name implements condor.Policy.
func (*Exclusive) Name() string { return "MC" }

// MachineRequirements implements condor.Policy: memory must fit and the
// device must be entirely free.
func (*Exclusive) MachineRequirements() string {
	return memoryGuard + " && MY." + condor.AttrPhiFreeDevices + " >= TARGET." + condor.AttrRequestPhiDevices
}

// PrepareJobAd implements condor.Policy: the job asks for a whole device.
func (*Exclusive) PrepareJobAd(q *condor.QueuedJob) {
	q.Ad.MustSetExpr("Requirements",
		"TARGET."+condor.AttrPhiFreeDevices+" >= MY."+condor.AttrRequestPhiDevices)
}

// PreNegotiation implements condor.Policy (no-op).
func (*Exclusive) PreNegotiation(*condor.Pool) {}

// Select implements condor.Policy: first matching machine, the FIFO
// behaviour of plain Condor matchmaking.
func (*Exclusive) Select(_ *condor.Pool, _ *condor.QueuedJob, _ []*condor.Machine) int { return 0 }

// PostNegotiation implements condor.Policy (no-op).
func (*Exclusive) PostNegotiation(*condor.Pool) {}

// RandomPack is the MCC policy.
type RandomPack struct {
	rand *rng.Source
}

// NewRandomPack returns the MCC policy; rand drives the random machine
// choice and must be non-nil for reproducible runs.
func NewRandomPack(rand *rng.Source) *RandomPack {
	if rand == nil {
		panic("scheduler: RandomPack requires a random source")
	}
	return &RandomPack{rand: rand}
}

// Name implements condor.Policy.
func (*RandomPack) Name() string { return "MCC" }

// MachineRequirements implements condor.Policy: accept anything — COSMIC
// handles memory at the node (the host-slot limit is enforced mechanically
// by the pool).
func (*RandomPack) MachineRequirements() string { return "true" }

// PrepareJobAd implements condor.Policy: any machine is acceptable; the
// cluster level is deliberately memory-oblivious.
func (*RandomPack) PrepareJobAd(q *condor.QueuedJob) {
	q.Ad.MustSetExpr("Requirements", "true")
}

// PreNegotiation implements condor.Policy (no-op).
func (*RandomPack) PreNegotiation(*condor.Pool) {}

// Select implements condor.Policy: uniform random choice among matches.
func (r *RandomPack) Select(_ *condor.Pool, _ *condor.QueuedJob, candidates []*condor.Machine) int {
	return r.rand.Intn(len(candidates))
}

// PostNegotiation implements condor.Policy (no-op).
func (*RandomPack) PostNegotiation(*condor.Pool) {}

// Agnostic is the Phi-oblivious configuration of §III: no resource guard at
// all. Jobs land on random machines regardless of memory or threads; pair
// it with a COSMIC-less cluster to reproduce oversubscription crashes and
// slowdowns.
type Agnostic struct {
	rand *rng.Source
	// MaxResident caps jobs per device (Condor still has finitely many
	// host slots per node); 0 means 16.
	MaxResident int
}

// NewAgnostic returns the oversubscription-agnostic policy.
func NewAgnostic(rand *rng.Source) *Agnostic {
	if rand == nil {
		panic("scheduler: Agnostic requires a random source")
	}
	return &Agnostic{rand: rand}
}

// Name implements condor.Policy.
func (*Agnostic) Name() string { return "Agnostic" }

// MachineRequirements implements condor.Policy: accept anything up to the
// host-slot cap.
func (a *Agnostic) MachineRequirements() string {
	max := a.MaxResident
	if max == 0 {
		max = 16
	}
	return fmt.Sprintf("MY.%s < %d", condor.AttrResidentJobs, max)
}

// PrepareJobAd implements condor.Policy.
func (*Agnostic) PrepareJobAd(q *condor.QueuedJob) {
	q.Ad.MustSetExpr("Requirements", "true")
}

// PreNegotiation implements condor.Policy (no-op).
func (*Agnostic) PreNegotiation(*condor.Pool) {}

// Select implements condor.Policy.
func (a *Agnostic) Select(_ *condor.Pool, _ *condor.QueuedJob, candidates []*condor.Machine) int {
	return a.rand.Intn(len(candidates))
}

// PostNegotiation implements condor.Policy (no-op).
func (*Agnostic) PostNegotiation(*condor.Pool) {}
