package scheduler_test

import (
	"strings"
	"testing"

	"phishare/internal/classad"
	"phishare/internal/cluster"
	"phishare/internal/condor"
	"phishare/internal/job"
	"phishare/internal/rng"
	"phishare/internal/scheduler"
	"phishare/internal/sim"
	"phishare/internal/units"
)

func mkJob(id int, mem units.MB, threads units.Threads) *job.Job {
	return &job.Job{
		ID: id, Name: "j", Workload: "test",
		Mem: mem, Threads: threads, ActualPeakMem: units.MB(float64(mem) * 0.9),
		Phases: []job.Phase{
			{Kind: job.OffloadPhase, Duration: units.Second, Threads: threads},
		},
	}
}

func TestPolicyNames(t *testing.T) {
	if scheduler.NewExclusive().Name() != "MC" {
		t.Error("Exclusive name")
	}
	if scheduler.NewRandomPack(rng.New(1)).Name() != "MCC" {
		t.Error("RandomPack name")
	}
	if scheduler.NewAgnostic(rng.New(1)).Name() != "Agnostic" {
		t.Error("Agnostic name")
	}
}

func TestRequirementsExpressionsParse(t *testing.T) {
	policies := []condor.Policy{
		scheduler.NewExclusive(),
		scheduler.NewRandomPack(rng.New(1)),
		scheduler.NewAgnostic(rng.New(1)),
	}
	for _, p := range policies {
		if _, err := classad.Parse(p.MachineRequirements()); err != nil {
			t.Errorf("%s machine requirements do not parse: %v", p.Name(), err)
		}
	}
}

func TestExclusivePrepareJobAd(t *testing.T) {
	p := scheduler.NewExclusive()
	q := &condor.QueuedJob{Job: mkJob(0, 500, 60), Ad: classad.NewAd()}
	q.Ad.SetInt(condor.AttrRequestPhiDevices, 1)
	p.PrepareJobAd(q)
	machine := classad.NewAd()
	machine.SetInt(condor.AttrPhiFreeDevices, 1)
	if !classad.Match(q.Ad, machine) {
		t.Error("MC job does not match a free device")
	}
	machine.SetInt(condor.AttrPhiFreeDevices, 0)
	if classad.Match(q.Ad, machine) {
		t.Error("MC job matched a claimed device")
	}
}

func TestRandomPackSelectCoversAllCandidates(t *testing.T) {
	p := scheduler.NewRandomPack(rng.New(42))
	cands := make([]*condor.Machine, 4)
	for i := range cands {
		cands[i] = &condor.Machine{}
	}
	seen := map[int]bool{}
	for i := 0; i < 200; i++ {
		idx := p.Select(nil, nil, cands)
		if idx < 0 || idx >= len(cands) {
			t.Fatalf("Select out of range: %d", idx)
		}
		seen[idx] = true
	}
	if len(seen) != 4 {
		t.Errorf("random selection covered %d/4 candidates", len(seen))
	}
}

func TestNewRandomPackNilPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("nil rng accepted")
		}
	}()
	scheduler.NewRandomPack(nil)
}

func TestNewAgnosticNilPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("nil rng accepted")
		}
	}()
	scheduler.NewAgnostic(nil)
}

func TestAgnosticMachineRequirementsCapsResidents(t *testing.T) {
	p := scheduler.NewAgnostic(rng.New(1))
	if !strings.Contains(p.MachineRequirements(), "16") {
		t.Errorf("default cap missing: %q", p.MachineRequirements())
	}
	p.MaxResident = 4
	if !strings.Contains(p.MachineRequirements(), "4") {
		t.Errorf("custom cap missing: %q", p.MachineRequirements())
	}
}

func TestExclusiveDeviceReleasedBetweenJobs(t *testing.T) {
	// Sequential execution on one device: job 2 starts only after job 1
	// finishes (plus renegotiation overhead).
	eng := sim.New()
	clu := cluster.New(eng, cluster.Config{Nodes: 1})
	pool := condor.NewPool(eng, clu, scheduler.NewExclusive(), condor.Config{})
	pool.Submit([]*job.Job{mkJob(0, 500, 60), mkJob(1, 500, 60)})
	eng.Run()
	recs := pool.Records()
	if len(recs) != 2 {
		t.Fatalf("records %d", len(recs))
	}
	first, second := recs[0], recs[1]
	if second.StartTime < first.EndTime {
		t.Errorf("second job started at %v before first ended at %v", second.StartTime, first.EndTime)
	}
}

func TestRandomPackDistributesLoad(t *testing.T) {
	// With 4 devices and many small jobs, random packing should touch
	// several machines.
	eng := sim.New()
	clu := cluster.New(eng, cluster.Config{Nodes: 4, UseCosmic: true, Seed: 3})
	pool := condor.NewPool(eng, clu, scheduler.NewRandomPack(rng.New(3)), condor.Config{})
	var jobs []*job.Job
	for i := 0; i < 24; i++ {
		jobs = append(jobs, mkJob(i, 1000, 60))
	}
	pool.Submit(jobs)
	eng.Run()
	used := map[string]bool{}
	for _, r := range pool.Records() {
		used[r.Machine] = true
	}
	if len(used) < 3 {
		t.Errorf("random packing used only %d machines", len(used))
	}
}
