package coi

import (
	"strings"
	"testing"

	"phishare/internal/cluster"
	"phishare/internal/job"
	"phishare/internal/runner"
	"phishare/internal/sim"
	"phishare/internal/units"
)

func vecadd() *Program {
	return VectorAdd(256, 2*units.Second, 120)
}

func TestVectorAddValidates(t *testing.T) {
	if err := vecadd().Validate(); err != nil {
		t.Fatalf("Fig. 1 program invalid: %v", err)
	}
}

func TestLowerVectorAdd(t *testing.T) {
	j, err := vecadd().Lower(7)
	if err != nil {
		t.Fatal(err)
	}
	if err := j.Validate(); err != nil {
		t.Fatalf("lowered job invalid: %v", err)
	}
	if j.Name != "vecadd#7" || j.Workload != "vecadd" {
		t.Errorf("identity %q/%q", j.Name, j.Workload)
	}
	// Shape: host, offload (with transfers), host.
	if len(j.Phases) != 3 {
		t.Fatalf("phases %d, want 3", len(j.Phases))
	}
	off := j.Phases[1]
	if off.Kind != job.OffloadPhase || off.Threads != 120 {
		t.Errorf("offload phase %+v", off)
	}
	if off.TransferIn != 768 { // a + b + c in
		t.Errorf("TransferIn %v, want 768", off.TransferIn)
	}
	if off.TransferOut != 256 { // c out
		t.Errorf("TransferOut %v, want 256", off.TransferOut)
	}
	if j.ActualPeakMem != 768 {
		t.Errorf("peak mem %v, want 768 (three arrays)", j.ActualPeakMem)
	}
	if j.Mem != 832 {
		t.Errorf("declared mem %v", j.Mem)
	}
}

func TestLoweredProgramRuns(t *testing.T) {
	// End-to-end: the Fig. 1 program executes on the simulated stack with
	// kernel + DMA time accounted (768 MB in + 256 MB out at 6 GB/s =
	// 128 + ~43 ms around a 2 s kernel, plus 1 s host).
	j, err := vecadd().Lower(1)
	if err != nil {
		t.Fatal(err)
	}
	eng := sim.New()
	clu := cluster.New(eng, cluster.Config{Nodes: 1, UseCosmic: true, Seed: 1})
	var end units.Tick
	var res runner.Result
	runner.Run(clu.Units[0], j, func(r runner.Result) { res = r; end = eng.Now() })
	eng.Run()
	if res.Outcome != runner.Completed {
		t.Fatalf("outcome %v", res.Outcome)
	}
	want := units.Tick(500 + 128 + 2000 + 43 + 500)
	if end < want-2 || end > want+2 {
		t.Errorf("completed at %v, want ~%v (host + DMA + kernel)", end, want)
	}
}

func TestValidateRejects(t *testing.T) {
	cases := map[string]*Program{
		"empty":           {Name: "x", DeclMem: 100, DeclThreads: 60},
		"no declarations": {Name: "x", Stmts: []Stmt{HostCompute{Duration: 1}}},
		"write before alloc": {Name: "x", DeclMem: 100, DeclThreads: 60,
			Stmts: []Stmt{WriteBuffer{Buffer: "a"}}},
		"read before alloc": {Name: "x", DeclMem: 100, DeclThreads: 60,
			Stmts: []Stmt{ReadBuffer{Buffer: "a"}}},
		"realloc": {Name: "x", DeclMem: 100, DeclThreads: 60,
			Stmts: []Stmt{Alloc{Buffer: "a", Size: 10}, Alloc{Buffer: "a", Size: 10}}},
		"zero buffer": {Name: "x", DeclMem: 100, DeclThreads: 60,
			Stmts: []Stmt{Alloc{Buffer: "a", Size: 0}}},
		"kernel too wide": {Name: "x", DeclMem: 100, DeclThreads: 60,
			Stmts: []Stmt{RunFunction{Name: "k", Duration: 1, Threads: 120}}},
		"zero kernel": {Name: "x", DeclMem: 100, DeclThreads: 60,
			Stmts: []Stmt{RunFunction{Name: "k", Duration: 0, Threads: 60}}},
		"zero host": {Name: "x", DeclMem: 100, DeclThreads: 60,
			Stmts: []Stmt{HostCompute{Duration: 0}}},
		"footprint over declaration": {Name: "x", DeclMem: 100, DeclThreads: 60,
			Stmts: []Stmt{Alloc{Buffer: "a", Size: 200}}},
	}
	for name, p := range cases {
		if err := p.Validate(); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
}

func TestLowerRejectsDanglingIO(t *testing.T) {
	// A write with no following kernel is a compile error.
	p := &Program{Name: "x", DeclMem: 100, DeclThreads: 60, Stmts: []Stmt{
		Alloc{Buffer: "a", Size: 10},
		WriteBuffer{Buffer: "a"},
	}}
	if _, err := p.Lower(1); err == nil {
		t.Error("dangling write accepted")
	}
	// A read before any kernel is too.
	p2 := &Program{Name: "x", DeclMem: 100, DeclThreads: 60, Stmts: []Stmt{
		Alloc{Buffer: "a", Size: 10},
		ReadBuffer{Buffer: "a"},
		RunFunction{Name: "k", Duration: 1, Threads: 60},
	}}
	if _, err := p2.Lower(1); err == nil {
		t.Error("read-before-kernel accepted")
	}
	// No offload region at all.
	p3 := &Program{Name: "x", DeclMem: 100, DeclThreads: 60, Stmts: []Stmt{
		HostCompute{Duration: 1},
	}}
	if _, err := p3.Lower(1); err == nil {
		t.Error("offload-free program accepted")
	}
}

func TestMultiKernelTransfersAttachCorrectly(t *testing.T) {
	// Two kernels: the first gets a+b in and x out; the second gets c in
	// and y out.
	p := &Program{Name: "multi", DeclMem: 1000, DeclThreads: 60, Stmts: []Stmt{
		Alloc{Buffer: "a", Size: 100},
		Alloc{Buffer: "b", Size: 50},
		Alloc{Buffer: "c", Size: 25},
		WriteBuffer{Buffer: "a"},
		WriteBuffer{Buffer: "b"},
		RunFunction{Name: "k1", Duration: 1000, Threads: 60},
		ReadBuffer{Buffer: "a"},
		HostCompute{Duration: 500},
		WriteBuffer{Buffer: "c"},
		RunFunction{Name: "k2", Duration: 1000, Threads: 60},
		ReadBuffer{Buffer: "b"},
	}}
	j, err := p.Lower(1)
	if err != nil {
		t.Fatal(err)
	}
	var offloads []job.Phase
	for _, ph := range j.Phases {
		if ph.Kind == job.OffloadPhase {
			offloads = append(offloads, ph)
		}
	}
	if len(offloads) != 2 {
		t.Fatalf("offloads %d", len(offloads))
	}
	if offloads[0].TransferIn != 150 || offloads[0].TransferOut != 100 {
		t.Errorf("k1 transfers %v/%v, want 150/100", offloads[0].TransferIn, offloads[0].TransferOut)
	}
	if offloads[1].TransferIn != 25 || offloads[1].TransferOut != 50 {
		t.Errorf("k2 transfers %v/%v, want 25/50", offloads[1].TransferIn, offloads[1].TransferOut)
	}
}

func TestStmtStrings(t *testing.T) {
	p := vecadd()
	var all []string
	for _, s := range p.Stmts {
		all = append(all, s.String())
	}
	joined := strings.Join(all, "\n")
	for _, want := range []string{"alloc a", "write b", "run vecadd_kernel", "read c", "host"} {
		if !strings.Contains(joined, want) {
			t.Errorf("statement rendering missing %q:\n%s", want, joined)
		}
	}
}
