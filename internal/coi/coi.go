// Package coi reimplements the narrow slice of Intel's Coprocessor Offload
// Infrastructure that the offload compiler targets (§II-B): device
// processes, named buffers, and run functions. It is the programming-model
// frontend of the stack — the paper's Fig. 1 pragma
//
//	#pragma offload target(mic:1) in(a: length(SIZE)) in(b: length(SIZE))
//	                              inout(c: length(SIZE))
//	for (i = 0; i < SIZE; i++) c[i] = a[i] + b[i];
//
// compiles to exactly this sequence: allocate device buffers, DMA the in()
// buffers across PCIe, launch the kernel as a COI run function, DMA the
// out() buffers back.
//
// A Program is that statement sequence plus the job's declared resource
// requirements. Lower compiles it to a job.Job phase profile — transfers
// attached to their kernels, host compute between offloads — which the
// standard runner executes against the simulated device and link. Examples
// and tests use it to express workloads the way an offload programmer
// would, instead of hand-writing phase lists.
package coi

import (
	"fmt"

	"phishare/internal/job"
	"phishare/internal/units"
)

// Stmt is one statement of an offload program.
type Stmt interface {
	stmt()
	String() string
}

// Alloc creates a named device buffer (COIBufferCreate). Buffer memory
// counts toward the process's device footprint.
type Alloc struct {
	Buffer string
	Size   units.MB
}

// WriteBuffer DMAs a host buffer to the device (an in() clause).
type WriteBuffer struct {
	Buffer string
}

// ReadBuffer DMAs a device buffer back to the host (an out() clause).
type ReadBuffer struct {
	Buffer string
}

// RunFunction launches a kernel on the device (COIPipelineRunFunction):
// the offload region itself.
type RunFunction struct {
	Name     string
	Duration units.Tick
	Threads  units.Threads
}

// HostCompute is host-side work between offloads.
type HostCompute struct {
	Duration units.Tick
}

func (Alloc) stmt()       {}
func (WriteBuffer) stmt() {}
func (ReadBuffer) stmt()  {}
func (RunFunction) stmt() {}
func (HostCompute) stmt() {}

func (s Alloc) String() string       { return fmt.Sprintf("alloc %s %v", s.Buffer, s.Size) }
func (s WriteBuffer) String() string { return "write " + s.Buffer }
func (s ReadBuffer) String() string  { return "read " + s.Buffer }
func (s RunFunction) String() string {
	return fmt.Sprintf("run %s %v %v", s.Name, s.Duration, s.Threads)
}
func (s HostCompute) String() string { return fmt.Sprintf("host %v", s.Duration) }

// Program is an offload application: declared resources plus the statement
// sequence the compiler emitted.
type Program struct {
	Name string
	// DeclMem and DeclThreads are what the user's submit file declares —
	// the knapsack's inputs. Validate checks them against the program.
	DeclMem     units.MB
	DeclThreads units.Threads
	Stmts       []Stmt
}

// Validate checks program well-formedness: buffers allocated before use,
// kernels within declared threads, buffer footprint within declared
// memory, and at least one statement.
func (p *Program) Validate() error {
	if len(p.Stmts) == 0 {
		return fmt.Errorf("coi: program %s is empty", p.Name)
	}
	if p.DeclMem <= 0 || p.DeclThreads <= 0 {
		return fmt.Errorf("coi: program %s missing resource declarations", p.Name)
	}
	buffers := map[string]units.MB{}
	var footprint units.MB
	for i, s := range p.Stmts {
		switch st := s.(type) {
		case Alloc:
			if st.Size <= 0 {
				return fmt.Errorf("coi: %s stmt %d: non-positive buffer size", p.Name, i)
			}
			if _, dup := buffers[st.Buffer]; dup {
				return fmt.Errorf("coi: %s stmt %d: buffer %q reallocated", p.Name, i, st.Buffer)
			}
			buffers[st.Buffer] = st.Size
			footprint += st.Size
		case WriteBuffer:
			if _, ok := buffers[st.Buffer]; !ok {
				return fmt.Errorf("coi: %s stmt %d: write to unallocated buffer %q", p.Name, i, st.Buffer)
			}
		case ReadBuffer:
			if _, ok := buffers[st.Buffer]; !ok {
				return fmt.Errorf("coi: %s stmt %d: read from unallocated buffer %q", p.Name, i, st.Buffer)
			}
		case RunFunction:
			if st.Duration <= 0 {
				return fmt.Errorf("coi: %s stmt %d: non-positive kernel duration", p.Name, i)
			}
			if st.Threads <= 0 || st.Threads > p.DeclThreads {
				return fmt.Errorf("coi: %s stmt %d: kernel threads %v outside (0, %v]",
					p.Name, i, st.Threads, p.DeclThreads)
			}
		case HostCompute:
			if st.Duration <= 0 {
				return fmt.Errorf("coi: %s stmt %d: non-positive host duration", p.Name, i)
			}
		default:
			return fmt.Errorf("coi: %s stmt %d: unknown statement %T", p.Name, i, s)
		}
	}
	if footprint > p.DeclMem {
		return fmt.Errorf("coi: %s buffer footprint %v exceeds declared memory %v",
			p.Name, footprint, p.DeclMem)
	}
	return nil
}

// Lower compiles the program into a schedulable job: host statements become
// host phases; each RunFunction becomes an offload phase carrying the DMA
// of the WriteBuffers since the previous kernel (its in() clauses) and the
// ReadBuffers up to the next host/kernel boundary (its out() clauses). The
// job's true peak memory is the total buffer footprint.
func (p *Program) Lower(id int) (*job.Job, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	buffers := map[string]units.MB{}
	var footprint units.MB

	j := &job.Job{
		ID:       id,
		Name:     fmt.Sprintf("%s#%d", p.Name, id),
		Workload: p.Name,
		Mem:      p.DeclMem,
		Threads:  p.DeclThreads,
	}

	var pendingIn units.MB
	lastOffload := -1 // index in j.Phases of the most recent offload
	for _, s := range p.Stmts {
		switch st := s.(type) {
		case Alloc:
			buffers[st.Buffer] = st.Size
			footprint += st.Size
		case WriteBuffer:
			pendingIn += buffers[st.Buffer]
		case ReadBuffer:
			if lastOffload < 0 {
				return nil, fmt.Errorf("coi: %s reads buffer %q before any kernel ran", p.Name, st.Buffer)
			}
			j.Phases[lastOffload].TransferOut += buffers[st.Buffer]
		case RunFunction:
			j.Phases = append(j.Phases, job.Phase{
				Kind:       job.OffloadPhase,
				Duration:   st.Duration,
				Threads:    st.Threads,
				TransferIn: pendingIn,
			})
			pendingIn = 0
			lastOffload = len(j.Phases) - 1
		case HostCompute:
			j.Phases = append(j.Phases, job.Phase{
				Kind:     job.HostPhase,
				Duration: st.Duration,
			})
		}
	}
	if pendingIn > 0 {
		return nil, fmt.Errorf("coi: %s writes buffers after the last kernel", p.Name)
	}
	if lastOffload < 0 {
		return nil, fmt.Errorf("coi: %s has no offload region", p.Name)
	}
	j.ActualPeakMem = footprint
	if err := j.Validate(); err != nil {
		return nil, fmt.Errorf("coi: lowering %s produced an invalid job: %w", p.Name, err)
	}
	return j, nil
}

// VectorAdd builds the paper's Fig. 1 program: three SIZE-length arrays,
// a and b in, c inout, one parallel loop offloaded to the coprocessor.
// sizeMB is the per-array payload; kernel duration and threads parameterize
// the loop body's cost.
func VectorAdd(sizeMB units.MB, kernel units.Tick, threads units.Threads) *Program {
	return &Program{
		Name:        "vecadd",
		DeclMem:     3*sizeMB + 64, // arrays + runtime slack
		DeclThreads: threads,
		Stmts: []Stmt{
			HostCompute{Duration: 500 * units.Millisecond}, // host setup
			Alloc{Buffer: "a", Size: sizeMB},
			Alloc{Buffer: "b", Size: sizeMB},
			Alloc{Buffer: "c", Size: sizeMB},
			WriteBuffer{Buffer: "a"}, // in(a: length(SIZE))
			WriteBuffer{Buffer: "b"}, // in(b: length(SIZE))
			WriteBuffer{Buffer: "c"}, // inout sends c too
			RunFunction{Name: "vecadd_kernel", Duration: kernel, Threads: threads},
			ReadBuffer{Buffer: "c"},                        // inout returns c
			HostCompute{Duration: 500 * units.Millisecond}, // host consumes c
		},
	}
}
