// Package phishare is a full Go reproduction of "A Coprocessor
// Sharing-Aware Scheduler for Xeon Phi-based Compute Clusters" (Coviello,
// Cadambi, Chakradhar — IPDPS 2014).
//
// The system layers, bottom to top:
//
//   - internal/sim: deterministic discrete-event engine
//   - internal/phi: Xeon Phi device model (cores, threads, memory, OOM
//     killer, oversubscription slowdown) and the node PCIe link
//   - internal/cosmic: the COSMIC node middleware (offload admission,
//     memory containers, node memory admission, core affinitization)
//   - internal/classad + internal/condor: an HTCondor-style cluster
//     manager with a working ClassAd language and FIFO matchmaking
//   - internal/scheduler: the MC (exclusive) and MCC (random packing)
//     baselines; internal/core: the paper's knapsack cluster scheduler
//   - internal/job + internal/workload: the Table I application mix and
//     the Fig. 7 synthetic distributions
//   - internal/experiments: one driver per table/figure plus extensions
//     and ablations
//
// This root package holds the repository-level artifacts: the benchmark
// harness (bench_test.go, one benchmark per paper artifact) and the
// cross-module integration tests (integration_test.go). See README.md for
// usage, DESIGN.md for the system inventory and modeling decisions, and
// EXPERIMENTS.md for paper-vs-measured results.
package phishare
